//! Aggregate functions and type-specialized columnar accumulators.
//!
//! [`GroupAcc`] holds the running state for one aggregate across *all*
//! groups as dense per-group vectors, and consumes `(group_ids, argument
//! array)` pairs in tight type-specialized loops with a no-nulls fast path —
//! there is no per-row enum dispatch or scalar boxing on the hot path.
//!
//! Accumulators support the two-phase (partial → final) protocol a
//! distributed engine needs: `update` consumes input rows, `merge` combines
//! partial states column-wise (e.g. from different splits or storage
//! nodes), and `finish` produces one result column. `AVG` carries
//! (sum, count) state so the merge is exact. Group ids come from
//! [`crate::groupby::GroupIdMap`]; [`crate::groupby::GroupedAggregator`]
//! bundles both halves.

use crate::array::{Array, BooleanArray, Date32Array, Float64Array, Int64Array, Utf8Array};
use crate::bitmap::Bitmap;
use crate::datatype::{DataType, Scalar};
use crate::error::{ColumnarError, Result};

/// The aggregate functions supported for pushdown in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(x)`.
    Count,
    /// `SUM(x)`.
    Sum,
    /// `MIN(x)`.
    Min,
    /// `MAX(x)`.
    Max,
    /// `AVG(x)`.
    Avg,
}

impl AggFunc {
    /// SQL name.
    pub fn sql(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    /// Parse a SQL function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }

    /// Result type given the input type.
    pub fn result_type(&self, input: Option<DataType>) -> Result<DataType> {
        Ok(match self {
            AggFunc::Count => DataType::Int64,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Sum => match input {
                Some(DataType::Int64) => DataType::Int64,
                Some(DataType::Float64) => DataType::Float64,
                other => {
                    return Err(ColumnarError::Invalid(format!(
                        "SUM over {other:?} not supported"
                    )))
                }
            },
            AggFunc::Min | AggFunc::Max => input.ok_or_else(|| {
                ColumnarError::Invalid(format!("{} requires an argument", self.sql()))
            })?,
        })
    }
}

/// Expand to a `(group_ids, values)` update loop with a no-nulls fast path.
/// `$body(g, v)` folds value `v` into group slot `g`.
macro_rules! update_loop {
    ($gids:expr, $values:expr, $validity:expr, |$g:ident, $v:ident| $body:expr) => {
        match $validity {
            None => {
                for (&gid, &$v) in $gids.iter().zip($values.iter()) {
                    let $g = gid as usize;
                    $body
                }
            }
            Some(bm) => {
                for (i, (&gid, &$v)) in $gids.iter().zip($values.iter()).enumerate() {
                    if bm.get(i) {
                        let $g = gid as usize;
                        $body
                    }
                }
            }
        }
    };
}

/// Columnar accumulator: state for one aggregate function across all
/// groups, stored as dense vectors indexed by group ordinal.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupAcc {
    /// COUNT state (`COUNT(*)` when updated with no argument).
    Count {
        /// Per-group row count.
        counts: Vec<i64>,
    },
    /// SUM over integers (wrapping, matching two's-complement SQL engines).
    SumI64 {
        /// Per-group running totals.
        sums: Vec<i64>,
        /// Whether the group saw any non-null input (SUM of no rows is NULL).
        seen: Vec<bool>,
    },
    /// SUM over floats.
    SumF64 {
        /// Per-group running totals.
        sums: Vec<f64>,
        /// Whether the group saw any non-null input.
        seen: Vec<bool>,
    },
    /// MIN/MAX over integers.
    MinMaxI64 {
        /// Per-group current extremum (unspecified until seen).
        values: Vec<i64>,
        /// Whether the group saw any non-null input.
        seen: Vec<bool>,
        /// True for MIN, false for MAX.
        is_min: bool,
    },
    /// MIN/MAX over floats (IEEE total order, matching `Scalar::total_cmp`).
    MinMaxF64 {
        /// Per-group current extremum.
        values: Vec<f64>,
        /// Whether the group saw any non-null input.
        seen: Vec<bool>,
        /// True for MIN, false for MAX.
        is_min: bool,
    },
    /// MIN/MAX over dates.
    MinMaxDate {
        /// Per-group current extremum.
        values: Vec<i32>,
        /// Whether the group saw any non-null input.
        seen: Vec<bool>,
        /// True for MIN, false for MAX.
        is_min: bool,
    },
    /// MIN/MAX over booleans (`false < true`).
    MinMaxBool {
        /// Per-group current extremum.
        values: Vec<bool>,
        /// Whether the group saw any non-null input.
        seen: Vec<bool>,
        /// True for MIN, false for MAX.
        is_min: bool,
    },
    /// MIN/MAX over strings (lexicographic byte order).
    MinMaxStr {
        /// Per-group current extremum, `None` until seen.
        values: Vec<Option<String>>,
        /// True for MIN, false for MAX.
        is_min: bool,
    },
    /// AVG state: exact (sum, count) pairs so the distributed merge is exact.
    Avg {
        /// Per-group running sums.
        sums: Vec<f64>,
        /// Per-group counts of non-null inputs.
        counts: Vec<i64>,
    },
}

impl GroupAcc {
    /// Fresh (zero-group) accumulator for `func` over inputs of type `input`.
    pub fn new(func: AggFunc, input: Option<DataType>) -> Result<GroupAcc> {
        Ok(match func {
            AggFunc::Count => GroupAcc::Count { counts: Vec::new() },
            AggFunc::Sum => match input {
                Some(DataType::Int64) => GroupAcc::SumI64 {
                    sums: Vec::new(),
                    seen: Vec::new(),
                },
                Some(DataType::Float64) => GroupAcc::SumF64 {
                    sums: Vec::new(),
                    seen: Vec::new(),
                },
                other => {
                    return Err(ColumnarError::Invalid(format!(
                        "SUM over {other:?} not supported"
                    )))
                }
            },
            AggFunc::Min | AggFunc::Max => {
                let is_min = func == AggFunc::Min;
                match input {
                    Some(DataType::Int64) => GroupAcc::MinMaxI64 {
                        values: Vec::new(),
                        seen: Vec::new(),
                        is_min,
                    },
                    Some(DataType::Float64) => GroupAcc::MinMaxF64 {
                        values: Vec::new(),
                        seen: Vec::new(),
                        is_min,
                    },
                    Some(DataType::Date32) => GroupAcc::MinMaxDate {
                        values: Vec::new(),
                        seen: Vec::new(),
                        is_min,
                    },
                    Some(DataType::Boolean) => GroupAcc::MinMaxBool {
                        values: Vec::new(),
                        seen: Vec::new(),
                        is_min,
                    },
                    Some(DataType::Utf8) => GroupAcc::MinMaxStr {
                        values: Vec::new(),
                        is_min,
                    },
                    None => {
                        return Err(ColumnarError::Invalid(format!(
                            "{} requires an argument",
                            func.sql()
                        )))
                    }
                }
            }
            AggFunc::Avg => GroupAcc::Avg {
                sums: Vec::new(),
                counts: Vec::new(),
            },
        })
    }

    /// Number of group slots currently allocated.
    pub fn num_groups(&self) -> usize {
        match self {
            GroupAcc::Count { counts } => counts.len(),
            GroupAcc::SumI64 { sums, .. } => sums.len(),
            GroupAcc::SumF64 { sums, .. } => sums.len(),
            GroupAcc::MinMaxI64 { values, .. } => values.len(),
            GroupAcc::MinMaxF64 { values, .. } => values.len(),
            GroupAcc::MinMaxDate { values, .. } => values.len(),
            GroupAcc::MinMaxBool { values, .. } => values.len(),
            GroupAcc::MinMaxStr { values, .. } => values.len(),
            GroupAcc::Avg { sums, .. } => sums.len(),
        }
    }

    /// Grow to `n` group slots (new slots start in the initial state).
    pub fn resize(&mut self, n: usize) {
        match self {
            GroupAcc::Count { counts } => counts.resize(n, 0),
            GroupAcc::SumI64 { sums, seen } => {
                sums.resize(n, 0);
                seen.resize(n, false);
            }
            GroupAcc::SumF64 { sums, seen } => {
                sums.resize(n, 0.0);
                seen.resize(n, false);
            }
            GroupAcc::MinMaxI64 { values, seen, .. } => {
                values.resize(n, 0);
                seen.resize(n, false);
            }
            GroupAcc::MinMaxF64 { values, seen, .. } => {
                values.resize(n, 0.0);
                seen.resize(n, false);
            }
            GroupAcc::MinMaxDate { values, seen, .. } => {
                values.resize(n, 0);
                seen.resize(n, false);
            }
            GroupAcc::MinMaxBool { values, seen, .. } => {
                values.resize(n, false);
                seen.resize(n, false);
            }
            GroupAcc::MinMaxStr { values, .. } => values.resize(n, None),
            GroupAcc::Avg { sums, counts } => {
                sums.resize(n, 0.0);
                counts.resize(n, 0);
            }
        }
    }

    /// Fold a batch of rows into the accumulator. `group_ids[i]` is the
    /// dense group ordinal of row `i` (all must be `< num_groups()`);
    /// `arg` is the evaluated argument column (`None` = `COUNT(*)`).
    ///
    /// An argument array whose type does not match the accumulator is
    /// ignored, mirroring the scalar path this replaced (planning computes
    /// types up front, so this does not happen in well-typed plans).
    pub fn update(&mut self, group_ids: &[u32], arg: Option<&Array>) {
        if let Some(a) = arg {
            assert_eq!(a.len(), group_ids.len(), "arg length");
        }
        match self {
            GroupAcc::Count { counts } => match arg {
                // COUNT(*) counts every row; COUNT(x) skips NULL x.
                None => {
                    for &g in group_ids {
                        counts[g as usize] += 1;
                    }
                }
                Some(a) => match a.validity() {
                    None => {
                        for &g in group_ids {
                            counts[g as usize] += 1;
                        }
                    }
                    Some(bm) => {
                        for (i, &g) in group_ids.iter().enumerate() {
                            if bm.get(i) {
                                counts[g as usize] += 1;
                            }
                        }
                    }
                },
            },
            GroupAcc::SumI64 { sums, seen } => {
                if let Some(Array::Int64(a)) = arg {
                    update_loop!(group_ids, a.values, a.validity.as_ref(), |g, v| {
                        sums[g] = sums[g].wrapping_add(v);
                        seen[g] = true;
                    });
                }
            }
            GroupAcc::SumF64 { sums, seen } => match arg {
                Some(Array::Float64(a)) => {
                    update_loop!(group_ids, a.values, a.validity.as_ref(), |g, v| {
                        sums[g] += v;
                        seen[g] = true;
                    });
                }
                // The scalar path accepted anything `as_f64` covers.
                Some(Array::Int64(a)) => {
                    update_loop!(group_ids, a.values, a.validity.as_ref(), |g, v| {
                        sums[g] += v as f64;
                        seen[g] = true;
                    });
                }
                Some(Array::Date32(a)) => {
                    update_loop!(group_ids, a.values, a.validity.as_ref(), |g, v| {
                        sums[g] += v as f64;
                        seen[g] = true;
                    });
                }
                _ => {}
            },
            GroupAcc::MinMaxI64 {
                values,
                seen,
                is_min,
            } => {
                if let Some(Array::Int64(a)) = arg {
                    let is_min = *is_min;
                    update_loop!(group_ids, a.values, a.validity.as_ref(), |g, v| {
                        if !seen[g] || (is_min && v < values[g]) || (!is_min && v > values[g]) {
                            values[g] = v;
                            seen[g] = true;
                        }
                    });
                }
            }
            GroupAcc::MinMaxF64 {
                values,
                seen,
                is_min,
            } => {
                if let Some(Array::Float64(a)) = arg {
                    let is_min = *is_min;
                    update_loop!(group_ids, a.values, a.validity.as_ref(), |g, v| {
                        let better = !seen[g]
                            || if is_min {
                                v.total_cmp(&values[g]).is_lt()
                            } else {
                                v.total_cmp(&values[g]).is_gt()
                            };
                        if better {
                            values[g] = v;
                            seen[g] = true;
                        }
                    });
                }
            }
            GroupAcc::MinMaxDate {
                values,
                seen,
                is_min,
            } => {
                if let Some(Array::Date32(a)) = arg {
                    let is_min = *is_min;
                    update_loop!(group_ids, a.values, a.validity.as_ref(), |g, v| {
                        if !seen[g] || (is_min && v < values[g]) || (!is_min && v > values[g]) {
                            values[g] = v;
                            seen[g] = true;
                        }
                    });
                }
            }
            GroupAcc::MinMaxBool {
                values,
                seen,
                is_min,
            } => {
                if let Some(Array::Boolean(a)) = arg {
                    let is_min = *is_min;
                    let validity = a.validity.as_ref();
                    for (i, &g) in group_ids.iter().enumerate() {
                        if validity.map(|bm| bm.get(i)).unwrap_or(true) {
                            let g = g as usize;
                            let v = a.values.get(i);
                            if !seen[g]
                                || (is_min && !v && values[g])
                                || (!is_min && v && !values[g])
                            {
                                values[g] = v;
                                seen[g] = true;
                            }
                        }
                    }
                }
            }
            GroupAcc::MinMaxStr { values, is_min } => {
                if let Some(Array::Utf8(a)) = arg {
                    let is_min = *is_min;
                    let validity = a.validity.as_ref();
                    for (i, &g) in group_ids.iter().enumerate() {
                        if validity.map(|bm| bm.get(i)).unwrap_or(true) {
                            let g = g as usize;
                            let v = a.value(i);
                            let better = match &values[g] {
                                None => true,
                                Some(cur) => {
                                    if is_min {
                                        v < cur.as_str()
                                    } else {
                                        v > cur.as_str()
                                    }
                                }
                            };
                            if better {
                                values[g] = Some(v.to_string());
                            }
                        }
                    }
                }
            }
            GroupAcc::Avg { sums, counts } => match arg {
                Some(Array::Float64(a)) => {
                    update_loop!(group_ids, a.values, a.validity.as_ref(), |g, v| {
                        sums[g] += v;
                        counts[g] += 1;
                    });
                }
                Some(Array::Int64(a)) => {
                    update_loop!(group_ids, a.values, a.validity.as_ref(), |g, v| {
                        sums[g] += v as f64;
                        counts[g] += 1;
                    });
                }
                Some(Array::Date32(a)) => {
                    update_loop!(group_ids, a.values, a.validity.as_ref(), |g, v| {
                        sums[g] += v as f64;
                        counts[g] += 1;
                    });
                }
                _ => {}
            },
        }
    }

    /// Merge another partial accumulator of the same kind. `group_map[g]`
    /// is the ordinal in `self` that `other`'s group `g` maps to; `self`
    /// must already be resized to cover every mapped ordinal.
    pub fn merge(&mut self, other: &GroupAcc, group_map: &[u32]) -> Result<()> {
        match (self, other) {
            (GroupAcc::Count { counts: a }, GroupAcc::Count { counts: b }) => {
                for (g, v) in group_map.iter().zip(b.iter()) {
                    a[*g as usize] += v;
                }
            }
            (GroupAcc::SumI64 { sums: a, seen: sa }, GroupAcc::SumI64 { sums: b, seen: sb }) => {
                for (i, &g) in group_map.iter().enumerate() {
                    let g = g as usize;
                    a[g] = a[g].wrapping_add(b[i]);
                    sa[g] |= sb[i];
                }
            }
            (GroupAcc::SumF64 { sums: a, seen: sa }, GroupAcc::SumF64 { sums: b, seen: sb }) => {
                for (i, &g) in group_map.iter().enumerate() {
                    let g = g as usize;
                    if sb[i] {
                        a[g] += b[i];
                        sa[g] = true;
                    }
                }
            }
            (
                GroupAcc::MinMaxI64 {
                    values: a,
                    seen: sa,
                    is_min,
                },
                GroupAcc::MinMaxI64 {
                    values: b,
                    seen: sb,
                    ..
                },
            ) => {
                let is_min = *is_min;
                for (i, &g) in group_map.iter().enumerate() {
                    let g = g as usize;
                    if sb[i] && (!sa[g] || (is_min && b[i] < a[g]) || (!is_min && b[i] > a[g])) {
                        a[g] = b[i];
                        sa[g] = true;
                    }
                }
            }
            (
                GroupAcc::MinMaxF64 {
                    values: a,
                    seen: sa,
                    is_min,
                },
                GroupAcc::MinMaxF64 {
                    values: b,
                    seen: sb,
                    ..
                },
            ) => {
                let is_min = *is_min;
                for (i, &g) in group_map.iter().enumerate() {
                    let g = g as usize;
                    if sb[i] {
                        let better = !sa[g]
                            || if is_min {
                                b[i].total_cmp(&a[g]).is_lt()
                            } else {
                                b[i].total_cmp(&a[g]).is_gt()
                            };
                        if better {
                            a[g] = b[i];
                            sa[g] = true;
                        }
                    }
                }
            }
            (
                GroupAcc::MinMaxDate {
                    values: a,
                    seen: sa,
                    is_min,
                },
                GroupAcc::MinMaxDate {
                    values: b,
                    seen: sb,
                    ..
                },
            ) => {
                let is_min = *is_min;
                for (i, &g) in group_map.iter().enumerate() {
                    let g = g as usize;
                    if sb[i] && (!sa[g] || (is_min && b[i] < a[g]) || (!is_min && b[i] > a[g])) {
                        a[g] = b[i];
                        sa[g] = true;
                    }
                }
            }
            (
                GroupAcc::MinMaxBool {
                    values: a,
                    seen: sa,
                    is_min,
                },
                GroupAcc::MinMaxBool {
                    values: b,
                    seen: sb,
                    ..
                },
            ) => {
                let is_min = *is_min;
                for (i, &g) in group_map.iter().enumerate() {
                    let g = g as usize;
                    if sb[i] && (!sa[g] || (is_min && !b[i] && a[g]) || (!is_min && b[i] && !a[g]))
                    {
                        a[g] = b[i];
                        sa[g] = true;
                    }
                }
            }
            (GroupAcc::MinMaxStr { values: a, is_min }, GroupAcc::MinMaxStr { values: b, .. }) => {
                let is_min = *is_min;
                for (i, &g) in group_map.iter().enumerate() {
                    let g = g as usize;
                    if let Some(v) = &b[i] {
                        let better = match &a[g] {
                            None => true,
                            Some(cur) => {
                                if is_min {
                                    v < cur
                                } else {
                                    v > cur
                                }
                            }
                        };
                        if better {
                            a[g] = Some(v.clone());
                        }
                    }
                }
            }
            (
                GroupAcc::Avg {
                    sums: a,
                    counts: ca,
                },
                GroupAcc::Avg {
                    sums: b,
                    counts: cb,
                },
            ) => {
                for (i, &g) in group_map.iter().enumerate() {
                    let g = g as usize;
                    // Skip empty partials so a `0.0` zero-state cannot
                    // erase the sign of a `-0.0` running sum.
                    if cb[i] > 0 {
                        a[g] += b[i];
                        ca[g] += cb[i];
                    }
                }
            }
            (me, other) => {
                return Err(ColumnarError::Invalid(format!(
                    "cannot merge aggregate states {me:?} and {other:?}"
                )))
            }
        }
        Ok(())
    }

    /// The SQL result for one group (used by tests and scalar references).
    pub fn finish_one(&self, g: usize) -> Scalar {
        match self {
            GroupAcc::Count { counts } => Scalar::Int64(counts[g]),
            GroupAcc::SumI64 { sums, seen } => {
                if seen[g] {
                    Scalar::Int64(sums[g])
                } else {
                    Scalar::Null
                }
            }
            GroupAcc::SumF64 { sums, seen } => {
                if seen[g] {
                    Scalar::Float64(sums[g])
                } else {
                    Scalar::Null
                }
            }
            GroupAcc::MinMaxI64 { values, seen, .. } => {
                if seen[g] {
                    Scalar::Int64(values[g])
                } else {
                    Scalar::Null
                }
            }
            GroupAcc::MinMaxF64 { values, seen, .. } => {
                if seen[g] {
                    Scalar::Float64(values[g])
                } else {
                    Scalar::Null
                }
            }
            GroupAcc::MinMaxDate { values, seen, .. } => {
                if seen[g] {
                    Scalar::Date32(values[g])
                } else {
                    Scalar::Null
                }
            }
            GroupAcc::MinMaxBool { values, seen, .. } => {
                if seen[g] {
                    Scalar::Boolean(values[g])
                } else {
                    Scalar::Null
                }
            }
            GroupAcc::MinMaxStr { values, .. } => match &values[g] {
                Some(v) => Scalar::Utf8(v.clone()),
                None => Scalar::Null,
            },
            GroupAcc::Avg { sums, counts } => {
                if counts[g] == 0 {
                    Scalar::Null
                } else {
                    Scalar::Float64(sums[g] / counts[g] as f64)
                }
            }
        }
    }

    /// Produce the result column, one row per group in ordinal order.
    pub fn finish(self) -> Array {
        fn validity_from(seen: Vec<bool>) -> Option<Bitmap> {
            if seen.iter().all(|&s| s) {
                None
            } else {
                Some(Bitmap::from_bools(&seen))
            }
        }
        match self {
            GroupAcc::Count { counts } => Array::from_i64(counts),
            GroupAcc::SumI64 { sums, seen } => Array::Int64(Int64Array {
                values: sums,
                validity: validity_from(seen),
            }),
            GroupAcc::SumF64 { sums, seen } => Array::Float64(Float64Array {
                values: sums,
                validity: validity_from(seen),
            }),
            GroupAcc::MinMaxI64 { values, seen, .. } => Array::Int64(Int64Array {
                values,
                validity: validity_from(seen),
            }),
            GroupAcc::MinMaxF64 { values, seen, .. } => Array::Float64(Float64Array {
                values,
                validity: validity_from(seen),
            }),
            GroupAcc::MinMaxDate { values, seen, .. } => Array::Date32(Date32Array {
                values,
                validity: validity_from(seen),
            }),
            GroupAcc::MinMaxBool { values, seen, .. } => Array::Boolean(BooleanArray {
                values: Bitmap::from_bools(&values),
                validity: validity_from(seen),
            }),
            GroupAcc::MinMaxStr { values, .. } => {
                let mut offsets = vec![0u32];
                let mut data = Vec::new();
                let mut valid = Vec::with_capacity(values.len());
                for v in &values {
                    if let Some(s) = v {
                        data.extend_from_slice(s.as_bytes());
                    }
                    offsets.push(data.len() as u32);
                    valid.push(v.is_some());
                }
                Array::Utf8(Utf8Array {
                    offsets,
                    data: data.into(),
                    validity: validity_from(valid),
                })
            }
            GroupAcc::Avg { sums, counts } => {
                let values = sums
                    .iter()
                    .zip(counts.iter())
                    .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
                    .collect();
                let seen: Vec<bool> = counts.iter().map(|&c| c > 0).collect();
                Array::Float64(Float64Array {
                    values,
                    validity: validity_from(seen),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-group helper: run `func` over the whole array as a single group.
    fn run(func: AggFunc, arr: &Array) -> Scalar {
        let mut acc = GroupAcc::new(func, Some(arr.data_type())).unwrap();
        acc.resize(1);
        let gids = vec![0u32; arr.len()];
        acc.update(&gids, Some(arr));
        acc.finish_one(0)
    }

    #[test]
    fn basic_aggregates() {
        let a = Array::from_i64(vec![3, 1, 4, 1, 5]);
        assert_eq!(run(AggFunc::Sum, &a), Scalar::Int64(14));
        assert_eq!(run(AggFunc::Min, &a), Scalar::Int64(1));
        assert_eq!(run(AggFunc::Max, &a), Scalar::Int64(5));
        assert_eq!(run(AggFunc::Count, &a), Scalar::Int64(5));
        assert_eq!(run(AggFunc::Avg, &a), Scalar::Float64(14.0 / 5.0));
    }

    #[test]
    fn float_aggregates() {
        let a = Array::from_f64(vec![1.5, -0.5]);
        assert_eq!(run(AggFunc::Sum, &a), Scalar::Float64(1.0));
        assert_eq!(run(AggFunc::Avg, &a), Scalar::Float64(0.5));
        assert_eq!(run(AggFunc::Min, &a), Scalar::Float64(-0.5));
    }

    #[test]
    fn nulls_are_skipped() {
        let mut b = crate::builder::ArrayBuilder::new(DataType::Int64);
        b.push_i64(10);
        b.push_null();
        b.push_i64(20);
        let a = b.finish();
        assert_eq!(run(AggFunc::Sum, &a), Scalar::Int64(30));
        assert_eq!(
            run(AggFunc::Count, &a),
            Scalar::Int64(2),
            "COUNT(x) skips NULL"
        );
        assert_eq!(run(AggFunc::Avg, &a), Scalar::Float64(15.0));
    }

    #[test]
    fn count_star_counts_nulls() {
        let mut acc = GroupAcc::new(AggFunc::Count, None).unwrap();
        acc.resize(1);
        acc.update(&[0, 0], None);
        assert_eq!(acc.finish_one(0), Scalar::Int64(2));
    }

    #[test]
    fn empty_input_semantics() {
        let a = Array::from_i64(vec![]);
        assert_eq!(
            run(AggFunc::Sum, &a),
            Scalar::Null,
            "SUM of nothing is NULL"
        );
        assert_eq!(run(AggFunc::Count, &a), Scalar::Int64(0));
        assert_eq!(run(AggFunc::Avg, &a), Scalar::Null);
        assert_eq!(run(AggFunc::Min, &a), Scalar::Null);
    }

    #[test]
    fn per_group_accumulation() {
        // Rows interleave two groups; the accumulator keys on group id.
        let vals = Array::from_i64(vec![10, 1, 20, 2]);
        let gids = [0u32, 1, 0, 1];
        let mut acc = GroupAcc::new(AggFunc::Sum, Some(DataType::Int64)).unwrap();
        acc.resize(2);
        acc.update(&gids, Some(&vals));
        assert_eq!(acc.finish_one(0), Scalar::Int64(30));
        assert_eq!(acc.finish_one(1), Scalar::Int64(3));
        let arr = acc.finish();
        assert_eq!(arr.scalar_at(0), Scalar::Int64(30));
        assert_eq!(arr.scalar_at(1), Scalar::Int64(3));
        assert!(arr.validity().is_none(), "all groups seen → no validity");
    }

    #[test]
    fn merge_equals_single_pass() {
        // Split [1..10] into two halves, aggregate each, merge — must equal
        // aggregating the whole thing. This is the distributed-correctness
        // invariant the OCS partial-aggregation path relies on.
        let all = Array::from_i64((1..=10).collect());
        let left = Array::from_i64((1..=5).collect());
        let right = Array::from_i64((6..=10).collect());
        for func in [
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            let whole = run(func, &all);
            let mut a = GroupAcc::new(func, Some(DataType::Int64)).unwrap();
            a.resize(1);
            a.update(&vec![0u32; left.len()], Some(&left));
            let mut b = GroupAcc::new(func, Some(DataType::Int64)).unwrap();
            b.resize(1);
            b.update(&vec![0u32; right.len()], Some(&right));
            a.merge(&b, &[0]).unwrap();
            assert_eq!(a.finish_one(0), whole, "{func:?}");
        }
    }

    #[test]
    fn merge_maps_group_ordinals() {
        // other's group 0 lands on self's group 1 and vice versa.
        let mut a = GroupAcc::new(AggFunc::Count, None).unwrap();
        a.resize(2);
        a.update(&[0, 0, 1], None);
        let mut b = GroupAcc::new(AggFunc::Count, None).unwrap();
        b.resize(2);
        b.update(&[0, 1, 1], None);
        a.merge(&b, &[1, 0]).unwrap();
        assert_eq!(a.finish_one(0), Scalar::Int64(4)); // 2 + b's group 1 (2)
        assert_eq!(a.finish_one(1), Scalar::Int64(2)); // 1 + b's group 0 (1)
    }

    #[test]
    fn merge_mismatched_states_errors() {
        let mut a = GroupAcc::new(AggFunc::Count, None).unwrap();
        let b = GroupAcc::new(AggFunc::Avg, Some(DataType::Float64)).unwrap();
        assert!(a.merge(&b, &[]).is_err());
    }

    #[test]
    fn min_max_strings_and_bools() {
        let s = Array::from_strs(["pear", "apple", "plum"]);
        assert_eq!(run(AggFunc::Min, &s), Scalar::Utf8("apple".into()));
        assert_eq!(run(AggFunc::Max, &s), Scalar::Utf8("plum".into()));
        let b = Array::from_bools(vec![true, false, true]);
        assert_eq!(run(AggFunc::Min, &b), Scalar::Boolean(false));
        assert_eq!(run(AggFunc::Max, &b), Scalar::Boolean(true));
    }

    #[test]
    fn sum_wraps_like_two_complement() {
        let a = Array::from_i64(vec![i64::MAX, 1]);
        assert_eq!(run(AggFunc::Sum, &a), Scalar::Int64(i64::MIN));
    }

    #[test]
    fn result_types() {
        assert_eq!(
            AggFunc::Sum.result_type(Some(DataType::Int64)).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggFunc::Avg.result_type(Some(DataType::Int64)).unwrap(),
            DataType::Float64
        );
        assert_eq!(AggFunc::Count.result_type(None).unwrap(), DataType::Int64);
        assert!(AggFunc::Sum.result_type(Some(DataType::Utf8)).is_err());
        assert!(AggFunc::Min.result_type(None).is_err());
    }

    #[test]
    fn from_name_parses() {
        assert_eq!(AggFunc::from_name("SUM"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::from_name("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
