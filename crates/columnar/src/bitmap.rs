//! Packed bitmaps used for validity (null) tracking and filter masks.
//!
//! Bits are stored LSB-first within each `u64` word, matching the layout a
//! vectorized engine wants for cheap popcounts and word-at-a-time logic.

use crate::error::{ColumnarError, Result};

/// A growable, packed bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Create an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a bitmap of `len` bits, all set to `value`.
    pub fn with_value(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let fill = if value { u64::MAX } else { 0 };
        let mut bm = Bitmap {
            words: vec![fill; nwords],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Create a bitmap from a slice of booleans.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut bm = Bitmap::with_value(bools.len(), false);
        for (i, &b) in bools.iter().enumerate() {
            if b {
                bm.set(i, true);
            }
        }
        bm
    }

    /// Reconstruct a bitmap from its raw little-endian word bytes.
    pub fn from_le_bytes(bytes: &[u8], len: usize) -> Result<Self> {
        let nwords = len.div_ceil(64);
        if bytes.len() != nwords * 8 {
            return Err(ColumnarError::Corrupt(format!(
                "bitmap byte length {} does not match bit length {len}",
                bytes.len()
            )));
        }
        let words = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
        let mut bm = Bitmap { words, len };
        bm.mask_tail();
        Ok(bm)
    }

    /// Serialize the bitmap words as little-endian bytes.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 8);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of bounds for len {}",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Write bit `i`. Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of bounds for len {}",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Append a bit.
    #[inline]
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            self.set(self.len - 1, true);
        }
    }

    /// Count of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Count of unset bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// True when every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Word-at-a-time logical AND of two equal-length bitmaps.
    pub fn and(&self, other: &Bitmap) -> Result<Bitmap> {
        self.zip_words(other, |a, b| a & b)
    }

    /// Word-at-a-time logical OR of two equal-length bitmaps.
    pub fn or(&self, other: &Bitmap) -> Result<Bitmap> {
        self.zip_words(other, |a, b| a | b)
    }

    /// Word-at-a-time logical XOR of two equal-length bitmaps.
    pub fn xor(&self, other: &Bitmap) -> Result<Bitmap> {
        self.zip_words(other, |a, b| a ^ b)
    }

    /// Bitwise NOT (within `len`).
    pub fn not(&self) -> Bitmap {
        let mut out = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Iterate over bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Indices of set bits, in ascending order.
    pub fn set_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, &w) in self.words.iter().enumerate() {
            let mut word = w;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                out.push(wi * 64 + bit);
                word &= word - 1;
            }
        }
        out
    }

    /// A new bitmap containing bits `[offset, offset + len)`.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Bitmap> {
        if offset + len > self.len {
            return Err(ColumnarError::IndexOutOfBounds {
                index: offset + len,
                len: self.len,
            });
        }
        let mut out = Bitmap::with_value(len, false);
        for i in 0..len {
            if self.get(offset + i) {
                out.set(i, true);
            }
        }
        Ok(out)
    }

    fn zip_words(&self, other: &Bitmap, f: impl Fn(u64, u64) -> u64) -> Result<Bitmap> {
        if self.len != other.len {
            return Err(ColumnarError::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| f(a, b))
            .collect();
        let mut out = Bitmap {
            words,
            len: self.len,
        };
        out.mask_tail();
        Ok(out)
    }

    /// Zero out bits beyond `len` in the last word so equality and popcount
    /// are well-defined.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        // Drop excess words if any (possible after from_le_bytes of padded data).
        let nwords = self.len.div_ceil(64);
        self.words.truncate(nwords);
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut bm = Bitmap::new();
        for b in iter {
            bm.push(b);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_roundtrip() {
        let mut bm = Bitmap::new();
        for i in 0..200 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 200);
        for i in 0..200 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        bm.set(1, true);
        assert!(bm.get(1));
        assert_eq!(bm.count_ones(), 67 + 1);
    }

    #[test]
    fn with_value_true_masks_tail() {
        let bm = Bitmap::with_value(70, true);
        assert_eq!(bm.count_ones(), 70);
        assert!(bm.all_set());
        let not = bm.not();
        assert_eq!(not.count_ones(), 0);
    }

    #[test]
    fn logical_ops() {
        let a = Bitmap::from_bools(&[true, true, false, false, true]);
        let b = Bitmap::from_bools(&[true, false, true, false, true]);
        assert_eq!(
            a.and(&b).unwrap(),
            Bitmap::from_bools(&[true, false, false, false, true])
        );
        assert_eq!(
            a.or(&b).unwrap(),
            Bitmap::from_bools(&[true, true, true, false, true])
        );
        assert_eq!(
            a.xor(&b).unwrap(),
            Bitmap::from_bools(&[false, true, true, false, false])
        );
        assert_eq!(
            a.not(),
            Bitmap::from_bools(&[false, false, true, true, false])
        );
    }

    #[test]
    fn logical_ops_length_mismatch_is_error() {
        let a = Bitmap::with_value(3, true);
        let b = Bitmap::with_value(4, true);
        assert!(matches!(
            a.and(&b),
            Err(ColumnarError::LengthMismatch { left: 3, right: 4 })
        ));
    }

    #[test]
    fn set_indices_spans_word_boundaries() {
        let mut bm = Bitmap::with_value(130, false);
        for &i in &[0usize, 63, 64, 65, 127, 128, 129] {
            bm.set(i, true);
        }
        assert_eq!(bm.set_indices(), vec![0, 63, 64, 65, 127, 128, 129]);
    }

    #[test]
    fn bytes_roundtrip() {
        let bm: Bitmap = (0..100).map(|i| i % 7 < 3).collect();
        let bytes = bm.to_le_bytes();
        let back = Bitmap::from_le_bytes(&bytes, 100).unwrap();
        assert_eq!(bm, back);
    }

    #[test]
    fn bytes_wrong_length_is_corrupt() {
        assert!(matches!(
            Bitmap::from_le_bytes(&[0u8; 7], 64),
            Err(ColumnarError::Corrupt(_))
        ));
    }

    #[test]
    fn slice_extracts_window() {
        let bm: Bitmap = (0..100).map(|i| i % 2 == 0).collect();
        let s = bm.slice(63, 10).unwrap();
        for i in 0..10 {
            assert_eq!(s.get(i), (63 + i) % 2 == 0);
        }
        assert!(bm.slice(95, 10).is_err());
    }
}
