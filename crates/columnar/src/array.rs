//! Immutable typed arrays and the dynamically-typed [`Array`] enum.
//!
//! Arrays pair a dense value buffer with an optional validity [`Bitmap`];
//! a missing bitmap means "no nulls", the common fast path.

use std::sync::Arc;

use bytes::Bytes;

use crate::bitmap::Bitmap;
use crate::datatype::{DataType, Scalar};
use crate::error::{ColumnarError, Result};

/// Shared, immutable handle to an [`Array`].
pub type ArrayRef = Arc<Array>;

/// A primitive array of `i64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Int64Array {
    /// Dense values; slots under a null are unspecified but present.
    pub values: Vec<i64>,
    /// Validity bitmap; `None` means all valid.
    pub validity: Option<Bitmap>,
}

/// A primitive array of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Float64Array {
    /// Dense values.
    pub values: Vec<f64>,
    /// Validity bitmap; `None` means all valid.
    pub validity: Option<Bitmap>,
}

/// A bit-packed boolean array.
#[derive(Debug, Clone, PartialEq)]
pub struct BooleanArray {
    /// Packed truth values.
    pub values: Bitmap,
    /// Validity bitmap; `None` means all valid.
    pub validity: Option<Bitmap>,
}

/// A UTF-8 string array in offsets + data form.
#[derive(Debug, Clone, PartialEq)]
pub struct Utf8Array {
    /// `offsets.len() == len + 1`; string `i` is `data[offsets[i]..offsets[i+1]]`.
    pub offsets: Vec<u32>,
    /// Concatenated UTF-8 bytes. A shared [`Bytes`] view so IPC decode can
    /// alias the wire buffer instead of copying it.
    pub data: Bytes,
    /// Validity bitmap; `None` means all valid.
    pub validity: Option<Bitmap>,
}

/// A date array as days since the UNIX epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Date32Array {
    /// Dense values.
    pub values: Vec<i32>,
    /// Validity bitmap; `None` means all valid.
    pub validity: Option<Bitmap>,
}

/// A dynamically-typed columnar array.
#[derive(Debug, Clone, PartialEq)]
pub enum Array {
    /// 64-bit integers.
    Int64(Int64Array),
    /// 64-bit floats.
    Float64(Float64Array),
    /// Booleans.
    Boolean(BooleanArray),
    /// UTF-8 strings.
    Utf8(Utf8Array),
    /// Dates.
    Date32(Date32Array),
}

impl Utf8Array {
    /// The string at `i`, ignoring validity.
    #[inline]
    pub fn value(&self, i: usize) -> &str {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        // Data is validated UTF-8 at construction.
        std::str::from_utf8(&self.data[start..end]).expect("utf8 invariant")
    }

    /// Number of strings.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the array holds no strings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Build from an iterator of `&str`.
    pub fn from_strs<'a>(items: impl IntoIterator<Item = &'a str>) -> Self {
        let mut offsets = vec![0u32];
        let mut data = Vec::new();
        for s in items {
            data.extend_from_slice(s.as_bytes());
            offsets.push(data.len() as u32);
        }
        Utf8Array {
            offsets,
            data: data.into(),
            validity: None,
        }
    }
}

impl Array {
    /// The array's [`DataType`].
    pub fn data_type(&self) -> DataType {
        match self {
            Array::Int64(_) => DataType::Int64,
            Array::Float64(_) => DataType::Float64,
            Array::Boolean(_) => DataType::Boolean,
            Array::Utf8(_) => DataType::Utf8,
            Array::Date32(_) => DataType::Date32,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Array::Int64(a) => a.values.len(),
            Array::Float64(a) => a.values.len(),
            Array::Boolean(a) => a.values.len(),
            Array::Utf8(a) => a.len(),
            Array::Date32(a) => a.values.len(),
        }
    }

    /// True when the array holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The validity bitmap, if any nulls are tracked.
    pub fn validity(&self) -> Option<&Bitmap> {
        match self {
            Array::Int64(a) => a.validity.as_ref(),
            Array::Float64(a) => a.validity.as_ref(),
            Array::Boolean(a) => a.validity.as_ref(),
            Array::Utf8(a) => a.validity.as_ref(),
            Array::Date32(a) => a.validity.as_ref(),
        }
    }

    /// Number of null slots.
    pub fn null_count(&self) -> usize {
        self.validity().map(|v| v.count_zeros()).unwrap_or(0)
    }

    /// True when row `i` is valid (non-null).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity().map(|v| v.get(i)).unwrap_or(true)
    }

    /// The value at row `i` as a [`Scalar`] (NULL-aware).
    pub fn scalar_at(&self, i: usize) -> Scalar {
        if !self.is_valid(i) {
            return Scalar::Null;
        }
        match self {
            Array::Int64(a) => Scalar::Int64(a.values[i]),
            Array::Float64(a) => Scalar::Float64(a.values[i]),
            Array::Boolean(a) => Scalar::Boolean(a.values.get(i)),
            Array::Utf8(a) => Scalar::Utf8(a.value(i).to_string()),
            Array::Date32(a) => Scalar::Date32(a.values[i]),
        }
    }

    /// Approximate in-memory footprint in bytes (value buffers + validity),
    /// used by the cost model for data-movement accounting.
    pub fn byte_size(&self) -> usize {
        let validity = self.validity().map(|v| v.len().div_ceil(8)).unwrap_or(0);
        validity
            + match self {
                Array::Int64(a) => a.values.len() * 8,
                Array::Float64(a) => a.values.len() * 8,
                Array::Boolean(a) => a.values.len().div_ceil(8),
                Array::Utf8(a) => a.data.len() + a.offsets.len() * 4,
                Array::Date32(a) => a.values.len() * 4,
            }
    }

    /// Non-null construction helpers.
    pub fn from_i64(values: Vec<i64>) -> Array {
        Array::Int64(Int64Array {
            values,
            validity: None,
        })
    }

    /// Build a non-null Float64 array.
    pub fn from_f64(values: Vec<f64>) -> Array {
        Array::Float64(Float64Array {
            values,
            validity: None,
        })
    }

    /// Build a non-null Boolean array.
    pub fn from_bools(values: Vec<bool>) -> Array {
        Array::Boolean(BooleanArray {
            values: Bitmap::from_bools(&values),
            validity: None,
        })
    }

    /// Build a non-null Utf8 array.
    pub fn from_strs<'a>(items: impl IntoIterator<Item = &'a str>) -> Array {
        Array::Utf8(Utf8Array::from_strs(items))
    }

    /// Build a non-null Date32 array.
    pub fn from_dates(values: Vec<i32>) -> Array {
        Array::Date32(Date32Array {
            values,
            validity: None,
        })
    }

    /// Build an array of `len` copies of `scalar` of data type `dt`.
    pub fn from_scalar(scalar: &Scalar, dt: DataType, len: usize) -> Result<Array> {
        if !scalar.is_null() && scalar.data_type() != Some(dt) {
            // Allow numeric widening via cast.
            let cast = scalar.cast(dt)?;
            return Array::from_scalar(&cast, dt, len);
        }
        let validity = if scalar.is_null() {
            Some(Bitmap::with_value(len, false))
        } else {
            None
        };
        Ok(match dt {
            DataType::Int64 => Array::Int64(Int64Array {
                values: vec![scalar.as_i64().unwrap_or(0); len],
                validity,
            }),
            DataType::Float64 => Array::Float64(Float64Array {
                values: vec![scalar.as_f64().unwrap_or(0.0); len],
                validity,
            }),
            DataType::Boolean => Array::Boolean(BooleanArray {
                values: Bitmap::with_value(len, matches!(scalar, Scalar::Boolean(true))),
                validity,
            }),
            DataType::Utf8 => {
                let s = match scalar {
                    Scalar::Utf8(s) => s.as_str(),
                    _ => "",
                };
                Array::Utf8(Utf8Array {
                    validity,
                    ..Utf8Array::from_strs(std::iter::repeat_n(s, len))
                })
            }
            DataType::Date32 => Array::Date32(Date32Array {
                values: vec![
                    match scalar {
                        Scalar::Date32(d) => *d,
                        _ => 0,
                    };
                    len
                ],
                validity,
            }),
        })
    }

    /// Borrow as Int64 or error.
    pub fn as_i64(&self) -> Result<&Int64Array> {
        match self {
            Array::Int64(a) => Ok(a),
            other => Err(ColumnarError::type_mismatch("Int64", other.data_type())),
        }
    }

    /// Borrow as Float64 or error.
    pub fn as_f64(&self) -> Result<&Float64Array> {
        match self {
            Array::Float64(a) => Ok(a),
            other => Err(ColumnarError::type_mismatch("Float64", other.data_type())),
        }
    }

    /// Borrow as Boolean or error.
    pub fn as_bool(&self) -> Result<&BooleanArray> {
        match self {
            Array::Boolean(a) => Ok(a),
            other => Err(ColumnarError::type_mismatch("Boolean", other.data_type())),
        }
    }

    /// Borrow as Utf8 or error.
    pub fn as_utf8(&self) -> Result<&Utf8Array> {
        match self {
            Array::Utf8(a) => Ok(a),
            other => Err(ColumnarError::type_mismatch("Utf8", other.data_type())),
        }
    }

    /// Borrow as Date32 or error.
    pub fn as_date32(&self) -> Result<&Date32Array> {
        match self {
            Array::Date32(a) => Ok(a),
            other => Err(ColumnarError::type_mismatch("Date32", other.data_type())),
        }
    }

    /// Concatenate same-typed arrays into one.
    pub fn concat(arrays: &[&Array]) -> Result<Array> {
        let Some(first) = arrays.first() else {
            return Err(ColumnarError::Invalid("concat of zero arrays".into()));
        };
        let dt = first.data_type();
        for a in arrays {
            if a.data_type() != dt {
                return Err(ColumnarError::type_mismatch(dt, a.data_type()));
            }
        }
        let total: usize = arrays.iter().map(|a| a.len()).sum();
        let mut builder = crate::builder::ArrayBuilder::new(dt);
        builder.reserve(total);
        for a in arrays {
            for i in 0..a.len() {
                builder.push(a.scalar_at(i))?;
            }
        }
        Ok(builder.finish())
    }

    /// Min and max non-null values, or `(Null, Null)` for an all-null/empty
    /// array. Drives file-format statistics.
    pub fn min_max(&self) -> (Scalar, Scalar) {
        let mut min = Scalar::Null;
        let mut max = Scalar::Null;
        for i in 0..self.len() {
            let v = self.scalar_at(i);
            if v.is_null() {
                continue;
            }
            if min.is_null() || v.total_cmp(&min).is_lt() {
                min = v.clone();
            }
            if max.is_null() || v.total_cmp(&max).is_gt() {
                max = v;
            }
        }
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_at_and_nulls() {
        let arr = Array::Int64(Int64Array {
            values: vec![1, 2, 3],
            validity: Some(Bitmap::from_bools(&[true, false, true])),
        });
        assert_eq!(arr.scalar_at(0), Scalar::Int64(1));
        assert_eq!(arr.scalar_at(1), Scalar::Null);
        assert_eq!(arr.null_count(), 1);
        assert_eq!(arr.len(), 3);
    }

    #[test]
    fn utf8_layout() {
        let arr = Utf8Array::from_strs(["hello", "", "world"]);
        assert_eq!(arr.len(), 3);
        assert_eq!(arr.value(0), "hello");
        assert_eq!(arr.value(1), "");
        assert_eq!(arr.value(2), "world");
        assert_eq!(arr.offsets, vec![0, 5, 5, 10]);
    }

    #[test]
    fn from_scalar_builds_constant_arrays() {
        let a = Array::from_scalar(&Scalar::Int64(7), DataType::Int64, 4).unwrap();
        assert_eq!(a.scalar_at(3), Scalar::Int64(7));
        let a = Array::from_scalar(&Scalar::Null, DataType::Float64, 2).unwrap();
        assert_eq!(a.null_count(), 2);
        // Numeric widening.
        let a = Array::from_scalar(&Scalar::Int64(2), DataType::Float64, 2).unwrap();
        assert_eq!(a.scalar_at(0), Scalar::Float64(2.0));
    }

    #[test]
    fn concat_arrays() {
        let a = Array::from_i64(vec![1, 2]);
        let b = Array::from_i64(vec![3]);
        let c = Array::concat(&[&a, &b]).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.scalar_at(2), Scalar::Int64(3));
        let bad = Array::from_f64(vec![1.0]);
        assert!(Array::concat(&[&a, &bad]).is_err());
    }

    #[test]
    fn min_max_skips_nulls() {
        let arr = Array::Float64(Float64Array {
            values: vec![5.0, -1.0, 9.0],
            validity: Some(Bitmap::from_bools(&[true, true, false])),
        });
        let (min, max) = arr.min_max();
        assert_eq!(min, Scalar::Float64(-1.0));
        assert_eq!(max, Scalar::Float64(5.0));
        let empty = Array::from_i64(vec![]);
        assert_eq!(empty.min_max(), (Scalar::Null, Scalar::Null));
    }

    #[test]
    fn byte_size_counts_buffers() {
        let arr = Array::from_i64(vec![0; 10]);
        assert_eq!(arr.byte_size(), 80);
        let s = Array::from_strs(["ab", "cd"]);
        assert_eq!(s.byte_size(), 4 + 3 * 4);
    }

    #[test]
    fn typed_accessors() {
        let arr = Array::from_i64(vec![1]);
        assert!(arr.as_i64().is_ok());
        assert!(arr.as_f64().is_err());
        assert!(arr.as_bool().is_err());
    }
}
