//! Property tests: parq write→read round-trips across arbitrary batches,
//! row-group sizes and codecs; pruning soundness on random data.

use std::sync::Arc;

use columnar::builder::ArrayBuilder;
use columnar::kernels::cmp::CmpOp;
use columnar::prelude::*;
use lzcodec::CodecKind;
use parq::{ParqReader, RangePredicate, WriteOptions};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Row {
    id: Option<i64>,
    v: f64,
    tag: String,
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (
            proptest::option::weighted(0.9, -10_000i64..10_000),
            -1e6f64..1e6,
            "[a-e]{0,3}",
        )
            .prop_map(|(id, v, tag)| Row { id, v, tag }),
        0..max,
    )
}

fn to_batch(rows: &[Row]) -> RecordBatch {
    let schema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64, true),
        Field::new("v", DataType::Float64, false),
        Field::new("tag", DataType::Utf8, false),
    ]));
    let mut ids = ArrayBuilder::new(DataType::Int64);
    let mut vs = ArrayBuilder::new(DataType::Float64);
    let mut tags = ArrayBuilder::new(DataType::Utf8);
    for r in rows {
        match r.id {
            Some(x) => ids.push_i64(x),
            None => ids.push_null(),
        }
        vs.push_f64(r.v);
        tags.push_str(&r.tag);
    }
    RecordBatch::try_new(
        schema,
        vec![
            Arc::new(ids.finish()),
            Arc::new(vs.finish()),
            Arc::new(tags.finish()),
        ],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn write_read_roundtrip(
        rows in rows_strategy(400),
        rg_rows in 1usize..200,
        codec_tag in 0u8..4,
    ) {
        let codec = CodecKind::from_tag(codec_tag).unwrap();
        let batch = to_batch(&rows);
        let bytes = parq::writer::write_file(
            batch.schema().clone(),
            std::slice::from_ref(&batch),
            WriteOptions { codec, row_group_rows: rg_rows, enable_dictionary: true },
        ).unwrap();
        let r = ParqReader::open(bytes.into()).unwrap();
        prop_assert_eq!(r.total_rows() as usize, rows.len());
        let got = r.read_all(None).unwrap();
        if rows.is_empty() {
            prop_assert!(got.is_empty());
        } else {
            let all = RecordBatch::concat(&got).unwrap();
            prop_assert_eq!(all.rows(), batch.rows());
        }
    }

    #[test]
    fn pruning_never_drops_matches(
        rows in rows_strategy(300),
        threshold in -10_000i64..10_000,
        rg_rows in 1usize..80,
    ) {
        let batch = to_batch(&rows);
        let bytes = parq::writer::write_file(
            batch.schema().clone(),
            &[batch],
            WriteOptions { codec: CodecKind::None, row_group_rows: rg_rows, enable_dictionary: false },
        ).unwrap();
        let r = ParqReader::open(bytes.into()).unwrap();
        let pred = RangePredicate { column: 0, op: CmpOp::GtEq, value: Scalar::Int64(threshold) };
        let kept: std::collections::HashSet<usize> =
            r.prune_row_groups(std::slice::from_ref(&pred)).into_iter().collect();
        for rg in 0..r.num_row_groups() {
            let b = r.read_row_group(rg, Some(&[0])).unwrap();
            let has = (0..b.num_rows()).any(|i| {
                match b.column(0).scalar_at(i) {
                    Scalar::Int64(x) => x >= threshold,
                    _ => false,
                }
            });
            if has {
                prop_assert!(kept.contains(&rg), "row group {} wrongly pruned", rg);
            }
        }
    }

    #[test]
    fn stats_bound_all_values(rows in rows_strategy(200)) {
        prop_assume!(!rows.is_empty());
        let batch = to_batch(&rows);
        let bytes = parq::writer::write_file(
            batch.schema().clone(),
            &[batch],
            WriteOptions::default(),
        ).unwrap();
        let r = ParqReader::open(bytes.into()).unwrap();
        let stats = r.column_stats(1).unwrap();
        for row in &rows {
            if let (Some(min), Some(max)) = (stats.min.as_f64(), stats.max.as_f64()) {
                prop_assert!(row.v >= min && row.v <= max);
            }
        }
        prop_assert_eq!(stats.row_count as usize, rows.len());
    }
}
