//! Reading parq files: footer parsing, projected column reads, and
//! statistics-based row-group pruning.

use bytes::{Buf, Bytes};
use columnar::kernels::cmp::CmpOp;
use columnar::prelude::*;
use lzcodec::CodecKind;
use std::sync::Arc;

use crate::encoding::{decode_chunk, Encoding};
use crate::stats::ColumnStats;
use crate::{ParqError, Result, MAGIC};

/// A simple range predicate against one column, used for row-group pruning
/// (`col op literal`).
#[derive(Debug, Clone)]
pub struct RangePredicate {
    /// Column index in the file schema.
    pub column: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Scalar,
}

impl RangePredicate {
    /// Can a chunk with these stats contain a matching row? Conservative:
    /// returns `true` when unsure.
    pub fn may_match(&self, stats: &ColumnStats) -> bool {
        if stats.row_count == 0 {
            return false;
        }
        if stats.min.is_null() || stats.max.is_null() || self.value.is_null() {
            return true; // all-null chunk or null literal: don't prune
        }
        let lo = &stats.min;
        let hi = &stats.max;
        let v = &self.value;
        match self.op {
            CmpOp::Eq => lo.total_cmp(v).is_le() && hi.total_cmp(v).is_ge(),
            CmpOp::NotEq => {
                // Prunable only if every value equals v.
                !(lo.total_cmp(v).is_eq() && hi.total_cmp(v).is_eq())
            }
            CmpOp::Lt => lo.total_cmp(v).is_lt(),
            CmpOp::LtEq => lo.total_cmp(v).is_le(),
            CmpOp::Gt => hi.total_cmp(v).is_gt(),
            CmpOp::GtEq => hi.total_cmp(v).is_ge(),
        }
    }
}

#[derive(Debug, Clone)]
struct ChunkInfo {
    offset: u64,
    compressed_len: u64,
    uncompressed_len: u64,
    encoding: Encoding,
    stats: ColumnStats,
}

#[derive(Debug, Clone)]
struct RowGroupInfo {
    rows: u64,
    chunks: Vec<ChunkInfo>,
}

/// An open parq file (zero-copy over `Bytes`).
#[derive(Debug, Clone)]
pub struct ParqReader {
    bytes: Bytes,
    schema: SchemaRef,
    codec: CodecKind,
    row_groups: Vec<RowGroupInfo>,
}

impl ParqReader {
    /// Parse the footer of `bytes`.
    pub fn open(bytes: Bytes) -> Result<ParqReader> {
        if bytes.len() < 12 || &bytes[..4] != MAGIC || &bytes[bytes.len() - 4..] != MAGIC {
            return Err(ParqError::Corrupt("missing parq magic".into()));
        }
        let footer_len = u32::from_le_bytes(
            bytes[bytes.len() - 8..bytes.len() - 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        if footer_len + 12 > bytes.len() {
            return Err(ParqError::Corrupt(format!(
                "footer length {footer_len} exceeds file size {}",
                bytes.len()
            )));
        }
        let footer_start = bytes.len() - 8 - footer_len;
        let mut buf = &bytes[footer_start..bytes.len() - 8];

        macro_rules! need {
            ($n:expr) => {
                if buf.remaining() < $n {
                    return Err(ParqError::Corrupt("truncated footer".into()));
                }
            };
        }

        need!(4);
        let ncols = buf.get_u32_le() as usize;
        if ncols > 65_536 {
            return Err(ParqError::Corrupt(format!(
                "implausible column count {ncols}"
            )));
        }
        let mut fields = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            need!(4);
            let nlen = buf.get_u32_le() as usize;
            need!(nlen + 2);
            let name = std::str::from_utf8(&buf[..nlen])
                .map_err(|e| ParqError::Corrupt(format!("field name: {e}")))?
                .to_string();
            buf.advance(nlen);
            let dt = DataType::from_tag(buf.get_u8()).map_err(ParqError::Columnar)?;
            let nullable = buf.get_u8() == 1;
            fields.push(Field::new(name, dt, nullable));
        }
        need!(5);
        let codec = CodecKind::from_tag(buf.get_u8()).map_err(ParqError::Codec)?;
        let ngroups = buf.get_u32_le() as usize;
        if ngroups > 10_000_000 {
            return Err(ParqError::Corrupt(format!(
                "implausible row-group count {ngroups}"
            )));
        }
        let mut row_groups = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            need!(8);
            let rows = buf.get_u64_le();
            let mut chunks = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                need!(25);
                let offset = buf.get_u64_le();
                let compressed_len = buf.get_u64_le();
                let uncompressed_len = buf.get_u64_le();
                let encoding = Encoding::from_tag(buf.get_u8())?;
                let stats = ColumnStats::read(&mut buf)?;
                if offset + compressed_len > footer_start as u64 {
                    return Err(ParqError::Corrupt("chunk extends past data section".into()));
                }
                chunks.push(ChunkInfo {
                    offset,
                    compressed_len,
                    uncompressed_len,
                    encoding,
                    stats,
                });
            }
            row_groups.push(RowGroupInfo { rows, chunks });
        }
        if !buf.is_empty() {
            return Err(ParqError::Corrupt("trailing footer bytes".into()));
        }
        Ok(ParqReader {
            bytes,
            schema: Arc::new(Schema::new(fields)),
            codec,
            row_groups,
        })
    }

    /// The file schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The file's compression codec.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Number of row groups.
    pub fn num_row_groups(&self) -> usize {
        self.row_groups.len()
    }

    /// Total row count.
    pub fn total_rows(&self) -> u64 {
        self.row_groups.iter().map(|g| g.rows).sum()
    }

    /// Whole-file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Statistics of column `col` in row group `rg`.
    pub fn chunk_stats(&self, rg: usize, col: usize) -> Result<&ColumnStats> {
        self.row_groups
            .get(rg)
            .and_then(|g| g.chunks.get(col))
            .map(|c| &c.stats)
            .ok_or_else(|| ParqError::Invalid(format!("no chunk ({rg}, {col})")))
    }

    /// Table-level merged statistics for column `col`.
    pub fn column_stats(&self, col: usize) -> Result<ColumnStats> {
        let mut acc = ColumnStats::empty();
        for rg in 0..self.row_groups.len() {
            acc = acc.merge(self.chunk_stats(rg, col)?);
        }
        Ok(acc)
    }

    fn chunk_info(&self, rg: usize, col: usize) -> Result<&ChunkInfo> {
        self.row_groups
            .get(rg)
            .ok_or_else(|| ParqError::Invalid(format!("row group {rg} out of range")))?
            .chunks
            .get(col)
            .ok_or_else(|| ParqError::Invalid(format!("column {col} out of range")))
    }

    /// Row count of row group `rg` from footer metadata (no decoding).
    pub fn row_group_rows(&self, rg: usize) -> Result<u64> {
        self.row_groups
            .get(rg)
            .map(|g| g.rows)
            .ok_or_else(|| ParqError::Invalid(format!("row group {rg} out of range")))
    }

    /// Compressed on-disk size of one column chunk (what a selective reader
    /// pulls off the disk when it decodes exactly this chunk).
    pub fn chunk_compressed_bytes(&self, rg: usize, col: usize) -> Result<u64> {
        Ok(self.chunk_info(rg, col)?.compressed_len)
    }

    /// Encoded-but-uncompressed size of one column chunk, from footer
    /// metadata. Lets callers account for decode work skipped (e.g. chunks
    /// a selection mask proved unnecessary) without decoding them.
    pub fn chunk_uncompressed_bytes(&self, rg: usize, col: usize) -> Result<u64> {
        Ok(self.chunk_info(rg, col)?.uncompressed_len)
    }

    /// Compressed on-disk size of the chunks a projection touches in one
    /// row group (what a reader must pull off the disk).
    pub fn projected_compressed_bytes(&self, rg: usize, projection: &[usize]) -> Result<u64> {
        let mut total = 0;
        for &c in projection {
            total += self.chunk_compressed_bytes(rg, c)?;
        }
        Ok(total)
    }

    /// Encoded-but-uncompressed size of the chunks a projection touches in
    /// one row group (the decode work those chunks represent).
    pub fn projected_uncompressed_bytes(&self, rg: usize, projection: &[usize]) -> Result<u64> {
        let mut total = 0;
        for &c in projection {
            total += self.chunk_uncompressed_bytes(rg, c)?;
        }
        Ok(total)
    }

    /// Read one column chunk.
    pub fn read_chunk(&self, rg: usize, col: usize) -> Result<Array> {
        let g = self
            .row_groups
            .get(rg)
            .ok_or_else(|| ParqError::Invalid(format!("row group {rg} out of range")))?;
        let ch = g
            .chunks
            .get(col)
            .ok_or_else(|| ParqError::Invalid(format!("column {col} out of range")))?;
        let start = ch.offset as usize;
        let end = start + ch.compressed_len as usize;
        let raw: Bytes = lzcodec::decompress(self.codec, &self.bytes[start..end])?.into();
        let array = decode_chunk(&raw, ch.encoding)?;
        if array.len() as u64 != g.rows {
            return Err(ParqError::Corrupt(format!(
                "chunk has {} rows, row group declares {}",
                array.len(),
                g.rows
            )));
        }
        Ok(array)
    }

    /// Read row group `rg` with an optional column projection (`None` =
    /// all columns, in schema order).
    pub fn read_row_group(&self, rg: usize, projection: Option<&[usize]>) -> Result<RecordBatch> {
        let indices: Vec<usize> = match projection {
            Some(p) => p.to_vec(),
            None => (0..self.schema.len()).collect(),
        };
        let schema = Arc::new(self.schema.project(&indices)?);
        let mut columns = Vec::with_capacity(indices.len());
        for &c in &indices {
            columns.push(Arc::new(self.read_chunk(rg, c)?));
        }
        RecordBatch::try_new(schema, columns).map_err(ParqError::Columnar)
    }

    /// Row-group indices that may contain rows matching every predicate.
    pub fn prune_row_groups(&self, predicates: &[RangePredicate]) -> Vec<usize> {
        (0..self.row_groups.len())
            .filter(|&rg| {
                predicates.iter().all(|p| {
                    self.row_groups[rg]
                        .chunks
                        .get(p.column)
                        .map(|c| p.may_match(&c.stats))
                        .unwrap_or(true)
                })
            })
            .collect()
    }

    /// Read every row group (optionally projected), one batch per group.
    pub fn read_all(&self, projection: Option<&[usize]>) -> Result<Vec<RecordBatch>> {
        (0..self.row_groups.len())
            .map(|rg| self.read_row_group(rg, projection))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_file, WriteOptions};

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
            Field::new("tag", DataType::Utf8, false),
        ]))
    }

    fn make_file(codec: CodecKind, rg_rows: usize, total: usize) -> Vec<u8> {
        let ids: Vec<i64> = (0..total as i64).collect();
        let vs: Vec<f64> = ids.iter().map(|&i| i as f64 * 0.5).collect();
        let tags: Vec<String> = ids.iter().map(|i| format!("t{}", i % 4)).collect();
        let batch = RecordBatch::try_new(
            schema(),
            vec![
                Arc::new(Array::from_i64(ids)),
                Arc::new(Array::from_f64(vs)),
                Arc::new(Array::from_strs(tags.iter().map(|s| s.as_str()))),
            ],
        )
        .unwrap();
        write_file(
            schema(),
            &[batch],
            WriteOptions {
                codec,
                row_group_rows: rg_rows,
                enable_dictionary: true,
            },
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_multi_row_group() {
        for codec in CodecKind::ALL {
            let bytes = make_file(codec, 100, 350);
            let r = ParqReader::open(bytes.into()).unwrap();
            assert_eq!(r.num_row_groups(), 4);
            assert_eq!(r.total_rows(), 350);
            assert_eq!(r.codec(), codec);
            let batches = r.read_all(None).unwrap();
            let all = RecordBatch::concat(&batches).unwrap();
            assert_eq!(all.num_rows(), 350);
            assert_eq!(all.column(0).scalar_at(349), Scalar::Int64(349));
            assert_eq!(all.column(2).scalar_at(5), Scalar::Utf8("t1".into()));
        }
    }

    #[test]
    fn projection_reads_subset() {
        let bytes = make_file(CodecKind::Snap, 1000, 100);
        let r = ParqReader::open(bytes.into()).unwrap();
        let b = r.read_row_group(0, Some(&[2, 0])).unwrap();
        assert_eq!(b.schema().names(), vec!["tag", "id"]);
        assert_eq!(b.num_rows(), 100);
        // Projected compressed bytes < full width.
        let partial = r.projected_compressed_bytes(0, &[0]).unwrap();
        let full = r.projected_compressed_bytes(0, &[0, 1, 2]).unwrap();
        assert!(partial < full);
    }

    #[test]
    fn chunk_byte_accounting_matches_projections() {
        let bytes = make_file(CodecKind::Gz, 100, 250);
        let r = ParqReader::open(bytes.into()).unwrap();
        for rg in 0..r.num_row_groups() {
            let per_chunk: u64 = (0..3)
                .map(|c| r.chunk_compressed_bytes(rg, c).unwrap())
                .sum();
            assert_eq!(
                per_chunk,
                r.projected_compressed_bytes(rg, &[0, 1, 2]).unwrap()
            );
            let per_chunk_raw: u64 = (0..3)
                .map(|c| r.chunk_uncompressed_bytes(rg, c).unwrap())
                .sum();
            assert_eq!(
                per_chunk_raw,
                r.projected_uncompressed_bytes(rg, &[0, 1, 2]).unwrap()
            );
            // Uncompressed is never smaller than... not guaranteed per
            // codec, but must be nonzero for non-empty groups.
            assert!(per_chunk_raw > 0);
        }
        assert_eq!(r.row_group_rows(0).unwrap(), 100);
        assert_eq!(r.row_group_rows(2).unwrap(), 50);
        assert!(r.row_group_rows(3).is_err());
        assert!(r.chunk_compressed_bytes(0, 9).is_err());
        assert!(r.chunk_uncompressed_bytes(9, 0).is_err());
    }

    #[test]
    fn stats_populated_and_merged() {
        let bytes = make_file(CodecKind::None, 100, 250);
        let r = ParqReader::open(bytes.into()).unwrap();
        let s0 = r.chunk_stats(0, 0).unwrap();
        assert_eq!(s0.min, Scalar::Int64(0));
        assert_eq!(s0.max, Scalar::Int64(99));
        let merged = r.column_stats(0).unwrap();
        assert_eq!(merged.min, Scalar::Int64(0));
        assert_eq!(merged.max, Scalar::Int64(249));
        assert_eq!(merged.row_count, 250);
        let tags = r.column_stats(2).unwrap();
        assert!(
            tags.distinct >= 4 && tags.distinct <= 8,
            "{}",
            tags.distinct
        );
    }

    #[test]
    fn pruning_skips_nonmatching_groups() {
        let bytes = make_file(CodecKind::None, 100, 400); // groups [0,99],[100,199],...
        let r = ParqReader::open(bytes.into()).unwrap();
        let pred = RangePredicate {
            column: 0,
            op: CmpOp::Gt,
            value: Scalar::Int64(250),
        };
        assert_eq!(r.prune_row_groups(&[pred]), vec![2, 3]);
        let pred = RangePredicate {
            column: 0,
            op: CmpOp::Eq,
            value: Scalar::Int64(150),
        };
        assert_eq!(r.prune_row_groups(&[pred]), vec![1]);
        let pred = RangePredicate {
            column: 0,
            op: CmpOp::Lt,
            value: Scalar::Int64(0),
        };
        assert!(r.prune_row_groups(&[pred]).is_empty());
        // Conjunction.
        let preds = [
            RangePredicate {
                column: 0,
                op: CmpOp::GtEq,
                value: Scalar::Int64(100),
            },
            RangePredicate {
                column: 0,
                op: CmpOp::Lt,
                value: Scalar::Int64(200),
            },
        ];
        assert_eq!(r.prune_row_groups(&preds), vec![1]);
    }

    #[test]
    fn pruning_is_conservative_not_exact() {
        // Pruning may keep groups without matches, never drop groups with
        // matches: verify by exhaustive check.
        let bytes = make_file(CodecKind::None, 64, 300);
        let r = ParqReader::open(bytes.into()).unwrap();
        for threshold in [-5i64, 0, 63, 64, 150, 299, 500] {
            let pred = RangePredicate {
                column: 0,
                op: CmpOp::Gt,
                value: Scalar::Int64(threshold),
            };
            let kept = r.prune_row_groups(std::slice::from_ref(&pred));
            for rg in 0..r.num_row_groups() {
                let b = r.read_row_group(rg, Some(&[0])).unwrap();
                let has_match = (0..b.num_rows())
                    .any(|i| b.column(0).scalar_at(i).as_i64().unwrap() > threshold);
                if has_match {
                    assert!(
                        kept.contains(&rg),
                        "group {rg} wrongly pruned at {threshold}"
                    );
                }
            }
        }
    }

    #[test]
    fn corrupt_files_rejected() {
        assert!(ParqReader::open(Bytes::from_static(b"nope")).is_err());
        let bytes = make_file(CodecKind::None, 100, 100);
        // Break the tail magic.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 1] = b'X';
        assert!(ParqReader::open(bad.into()).is_err());
        // Break the footer length.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 8..n - 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(ParqReader::open(bad.into()).is_err());
    }

    #[test]
    fn empty_file_roundtrip() {
        let bytes = write_file(schema(), &[], WriteOptions::default()).unwrap();
        let r = ParqReader::open(bytes.into()).unwrap();
        assert_eq!(r.num_row_groups(), 0);
        assert_eq!(r.total_rows(), 0);
        assert!(r.read_all(None).unwrap().is_empty());
    }
}
