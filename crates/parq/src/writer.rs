//! Writing parq files.

use bytes::BufMut;
use columnar::prelude::*;
use lzcodec::CodecKind;

use crate::encoding::{choose_encoding, encode_chunk, Encoding};
use crate::stats::ColumnStats;
use crate::{ParqError, Result, MAGIC};

/// Writer configuration.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Compression codec applied to every column chunk.
    pub codec: CodecKind,
    /// Maximum rows per row group.
    pub row_group_rows: usize,
    /// Allow dictionary encoding for low-cardinality string columns.
    pub enable_dictionary: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            codec: CodecKind::None,
            row_group_rows: 128 * 1024,
            enable_dictionary: true,
        }
    }
}

/// Metadata of one column chunk as recorded in the footer.
#[derive(Debug, Clone)]
pub(crate) struct ChunkMeta {
    pub offset: u64,
    pub compressed_len: u64,
    pub uncompressed_len: u64,
    pub encoding: Encoding,
    pub stats: ColumnStats,
}

/// Metadata of one row group.
#[derive(Debug, Clone)]
pub(crate) struct RowGroupMeta {
    pub rows: u64,
    pub chunks: Vec<ChunkMeta>,
}

/// Streaming writer producing the file bytes in memory.
#[derive(Debug)]
pub struct ParqWriter {
    schema: SchemaRef,
    options: WriteOptions,
    data: Vec<u8>,
    row_groups: Vec<RowGroupMeta>,
    pending: Vec<RecordBatch>,
    pending_rows: usize,
    finished: bool,
}

impl ParqWriter {
    /// New writer for `schema`.
    pub fn new(schema: SchemaRef, options: WriteOptions) -> Self {
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        ParqWriter {
            schema,
            options,
            data,
            row_groups: Vec::new(),
            pending: Vec::new(),
            pending_rows: 0,
            finished: false,
        }
    }

    /// Append a batch (buffered; row groups flush at the configured size).
    pub fn write(&mut self, batch: &RecordBatch) -> Result<()> {
        if self.finished {
            return Err(ParqError::Invalid("writer already finished".into()));
        }
        if batch.schema().as_ref() != self.schema.as_ref() {
            return Err(ParqError::Invalid(format!(
                "batch schema {} does not match writer schema {}",
                batch.schema(),
                self.schema
            )));
        }
        self.pending.push(batch.clone());
        self.pending_rows += batch.num_rows();
        while self.pending_rows >= self.options.row_group_rows {
            self.flush_row_group(self.options.row_group_rows)?;
        }
        Ok(())
    }

    fn take_rows(&mut self, rows: usize) -> Result<RecordBatch> {
        // Concatenate pending and split off `rows`.
        let all = RecordBatch::concat(&self.pending)?;
        self.pending.clear();
        self.pending_rows = 0;
        if all.num_rows() > rows {
            let head: Vec<usize> = (0..rows).collect();
            let tail: Vec<usize> = (rows..all.num_rows()).collect();
            let head_batch = columnar::kernels::selection::take_batch(&all, &head)?;
            let tail_batch = columnar::kernels::selection::take_batch(&all, &tail)?;
            self.pending_rows = tail_batch.num_rows();
            self.pending.push(tail_batch);
            Ok(head_batch)
        } else {
            Ok(all)
        }
    }

    fn flush_row_group(&mut self, rows: usize) -> Result<()> {
        if self.pending_rows == 0 {
            return Ok(());
        }
        let group = self.take_rows(rows.min(self.pending_rows))?;
        let mut chunks = Vec::with_capacity(group.num_columns());
        for col in group.columns() {
            let encoding = if self.options.enable_dictionary {
                choose_encoding(col)
            } else {
                Encoding::Plain
            };
            let raw = encode_chunk(col, encoding)?;
            let compressed = lzcodec::compress(self.options.codec, &raw);
            let offset = self.data.len() as u64;
            self.data.extend_from_slice(&compressed);
            chunks.push(ChunkMeta {
                offset,
                compressed_len: compressed.len() as u64,
                uncompressed_len: raw.len() as u64,
                encoding,
                stats: ColumnStats::compute(col),
            });
        }
        self.row_groups.push(RowGroupMeta {
            rows: group.num_rows() as u64,
            chunks,
        });
        Ok(())
    }

    /// Flush pending rows, write the footer and return the file bytes.
    pub fn finish(mut self) -> Result<Vec<u8>> {
        self.flush_row_group(usize::MAX)?;
        self.finished = true;

        let mut footer = Vec::new();
        // Schema.
        footer.put_u32_le(self.schema.len() as u32);
        for f in self.schema.fields() {
            footer.put_u32_le(f.name.len() as u32);
            footer.put_slice(f.name.as_bytes());
            footer.put_u8(f.data_type.tag());
            footer.put_u8(f.nullable as u8);
        }
        footer.put_u8(self.options.codec.tag());
        footer.put_u32_le(self.row_groups.len() as u32);
        for rg in &self.row_groups {
            footer.put_u64_le(rg.rows);
            for ch in &rg.chunks {
                footer.put_u64_le(ch.offset);
                footer.put_u64_le(ch.compressed_len);
                footer.put_u64_le(ch.uncompressed_len);
                footer.put_u8(ch.encoding.tag());
                ch.stats.write(&mut footer);
            }
        }
        let footer_len = footer.len() as u32;
        self.data.extend_from_slice(&footer);
        self.data.put_u32_le(footer_len);
        self.data.extend_from_slice(MAGIC);
        Ok(self.data)
    }
}

/// Convenience: write `batches` (all sharing `schema`) into file bytes.
pub fn write_file(
    schema: SchemaRef,
    batches: &[RecordBatch],
    options: WriteOptions,
) -> Result<Vec<u8>> {
    let mut w = ParqWriter::new(schema, options);
    for b in batches {
        w.write(b)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("name", DataType::Utf8, false),
        ]))
    }

    fn batch(n: usize, offset: i64) -> RecordBatch {
        let ids: Vec<i64> = (0..n as i64).map(|i| i + offset).collect();
        let names: Vec<String> = ids.iter().map(|i| format!("row{}", i % 3)).collect();
        RecordBatch::try_new(
            schema(),
            vec![
                Arc::new(Array::from_i64(ids)),
                Arc::new(Array::from_strs(names.iter().map(|s| s.as_str()))),
            ],
        )
        .unwrap()
    }

    #[test]
    fn writes_file_with_magic_and_footer() {
        let bytes = write_file(schema(), &[batch(10, 0)], WriteOptions::default()).unwrap();
        assert_eq!(&bytes[..4], MAGIC);
        assert_eq!(&bytes[bytes.len() - 4..], MAGIC);
    }

    #[test]
    fn row_group_splitting() {
        let opts = WriteOptions {
            row_group_rows: 16,
            ..Default::default()
        };
        let mut w = ParqWriter::new(schema(), opts);
        w.write(&batch(40, 0)).unwrap(); // flushes 16 + 16, 8 pending
        w.write(&batch(10, 40)).unwrap(); // 18 pending -> flushes 16, 2 pending
        assert_eq!(w.row_groups.len(), 3, "groups flushed eagerly at 16 rows");
        let bytes = w.finish().unwrap();
        let r = crate::reader::ParqReader::open(bytes.into()).unwrap();
        assert_eq!(r.num_row_groups(), 4, "finish flushes the 2-row tail");
        assert_eq!(r.total_rows(), 50);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let other = Arc::new(Schema::new(vec![Field::new("z", DataType::Float64, false)]));
        let bad = RecordBatch::try_new(other, vec![Arc::new(Array::from_f64(vec![1.0]))]).unwrap();
        let mut w = ParqWriter::new(schema(), WriteOptions::default());
        assert!(w.write(&bad).is_err());
    }

    #[test]
    fn empty_file_is_valid() {
        let bytes = write_file(schema(), &[], WriteOptions::default()).unwrap();
        assert!(bytes.len() >= 12);
    }

    #[test]
    fn compression_shrinks_repetitive_data() {
        let b = batch(10_000, 0);
        let raw = write_file(schema(), std::slice::from_ref(&b), WriteOptions::default()).unwrap();
        let zst = write_file(
            schema(),
            &[b],
            WriteOptions {
                codec: CodecKind::Zst,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(zst.len() < raw.len() / 2, "{} vs {}", zst.len(), raw.len());
    }
}
