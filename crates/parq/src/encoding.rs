//! Column chunk encodings: plain and dictionary.
//!
//! A chunk is one column of one row group. Plain encoding reuses the
//! columnar IPC array layout; dictionary encoding factors repeated strings
//! through an index array (chosen automatically for low-cardinality Utf8
//! columns, like Parquet's dictionary pages).

use bytes::{Buf, BufMut, Bytes};
use columnar::builder::ArrayBuilder;
use columnar::ipc;
use columnar::prelude::*;
use std::sync::Arc;

use crate::{ParqError, Result};

/// Chunk encoding tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Values stored directly.
    Plain,
    /// Utf8 values factored through a dictionary + i64 indices.
    Dictionary,
}

impl Encoding {
    /// Stable byte tag.
    pub fn tag(&self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Dictionary => 1,
        }
    }

    /// Inverse of [`Encoding::tag`].
    pub fn from_tag(tag: u8) -> Result<Encoding> {
        Ok(match tag {
            0 => Encoding::Plain,
            1 => Encoding::Dictionary,
            other => return Err(ParqError::Corrupt(format!("unknown encoding tag {other}"))),
        })
    }
}

fn single_column_batch(name: &str, array: Array) -> RecordBatch {
    let field = Field::new(name, array.data_type(), true);
    let schema = Arc::new(Schema::new(vec![field]));
    RecordBatch::try_new(schema, vec![Arc::new(array)]).expect("self-consistent batch")
}

/// Pick the encoding for `array`: dictionary for Utf8 when it at least
/// halves the distinct count, else plain.
pub fn choose_encoding(array: &Array) -> Encoding {
    if let Array::Utf8(a) = array {
        if a.len() >= 16 {
            let mut distinct = std::collections::HashSet::new();
            for i in 0..a.len() {
                distinct.insert(a.value(i));
                if distinct.len() * 2 > a.len() {
                    return Encoding::Plain;
                }
            }
            return Encoding::Dictionary;
        }
    }
    Encoding::Plain
}

/// Encode `array` with `encoding` into bytes.
pub fn encode_chunk(array: &Array, encoding: Encoding) -> Result<Bytes> {
    match encoding {
        Encoding::Plain => Ok(ipc::encode_batch(&single_column_batch("c", array.clone()))),
        Encoding::Dictionary => {
            let a = array.as_utf8().map_err(ParqError::Columnar)?;
            // Build dictionary in first-appearance order. NULL slots get
            // index 0 (masked out by the validity bitmap on decode).
            let mut lookup: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
            let mut dict: Vec<&str> = Vec::new();
            let mut indices: Vec<u32> = Vec::with_capacity(a.len());
            for i in 0..a.len() {
                if !array.is_valid(i) {
                    indices.push(0);
                    continue;
                }
                let s = a.value(i);
                let id = *lookup.entry(s).or_insert_with(|| {
                    dict.push(s);
                    (dict.len() - 1) as u32
                });
                indices.push(id);
            }
            // Indices packed at the narrowest fixed width that fits.
            let width: u8 = match dict.len() {
                0..=0xff => 1,
                0x100..=0xffff => 2,
                _ => 4,
            };
            let mut out = Vec::with_capacity(a.len() * width as usize + 64);
            out.put_u32_le(a.len() as u32);
            match array.validity() {
                Some(v) => {
                    out.put_u8(1);
                    out.put_slice(&v.to_le_bytes());
                }
                None => out.put_u8(0),
            }
            out.put_u8(width);
            for &idx in &indices {
                match width {
                    1 => out.put_u8(idx as u8),
                    2 => out.put_u16_le(idx as u16),
                    _ => out.put_u32_le(idx),
                }
            }
            let dict_bytes = ipc::encode_batch(&single_column_batch(
                "d",
                Array::from_strs(dict.iter().copied()),
            ));
            out.put_u32_le(dict_bytes.len() as u32);
            out.put_slice(&dict_bytes);
            Ok(out.into())
        }
    }
}

fn decode_single(bytes: &Bytes) -> Result<Array> {
    let batch = ipc::decode_batch(bytes).map_err(ParqError::Columnar)?;
    if batch.num_columns() != 1 {
        return Err(ParqError::Corrupt(
            "chunk batch must have one column".into(),
        ));
    }
    Ok(batch.column(0).as_ref().clone())
}

/// Decode a chunk back into an array.
pub fn decode_chunk(bytes: &Bytes, encoding: Encoding) -> Result<Array> {
    match encoding {
        Encoding::Plain => decode_single(bytes),
        Encoding::Dictionary => {
            let mut buf: &[u8] = bytes;
            macro_rules! need {
                ($n:expr) => {
                    if buf.remaining() < $n {
                        return Err(ParqError::Corrupt("truncated dictionary chunk".into()));
                    }
                };
            }
            need!(5);
            let nrows = buf.get_u32_le() as usize;
            let has_validity = buf.get_u8() == 1;
            let validity = if has_validity {
                let nbytes = nrows.div_ceil(64) * 8;
                need!(nbytes);
                let v = columnar::Bitmap::from_le_bytes(&buf[..nbytes], nrows)
                    .map_err(ParqError::Columnar)?;
                buf.advance(nbytes);
                Some(v)
            } else {
                None
            };
            need!(1);
            let width = buf.get_u8() as usize;
            if !matches!(width, 1 | 2 | 4) {
                return Err(ParqError::Corrupt(format!("bad index width {width}")));
            }
            need!(nrows * width);
            let mut indices = Vec::with_capacity(nrows);
            for i in 0..nrows {
                let off = i * width;
                let idx = match width {
                    1 => buf[off] as u32,
                    2 => u16::from_le_bytes([buf[off], buf[off + 1]]) as u32,
                    _ => u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes")),
                };
                indices.push(idx);
            }
            buf.advance(nrows * width);
            need!(4);
            let dlen = buf.get_u32_le() as usize;
            need!(dlen);
            let consumed = bytes.len() - buf.len();
            let dict = decode_single(&bytes.slice(consumed..consumed + dlen))?;
            let dict = dict.as_utf8().map_err(ParqError::Columnar)?;
            let mut out = ArrayBuilder::new(DataType::Utf8);
            for (i, &id) in indices.iter().enumerate() {
                if validity.as_ref().map(|v| !v.get(i)).unwrap_or(false) {
                    out.push_null();
                    continue;
                }
                if id as usize >= dict.len() {
                    return Err(ParqError::Corrupt(format!(
                        "dictionary index {id} out of range {}",
                        dict.len()
                    )));
                }
                out.push_str(dict.value(id as usize));
            }
            Ok(out.finish())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_roundtrip_all_types() {
        for arr in [
            Array::from_i64(vec![1, 2, 3]),
            Array::from_f64(vec![0.5, f64::MAX]),
            Array::from_bools(vec![true, false]),
            Array::from_strs(["a", "bb"]),
            Array::from_dates(vec![1, 2]),
        ] {
            let bytes = encode_chunk(&arr, Encoding::Plain).unwrap();
            let back = decode_chunk(&bytes, Encoding::Plain).unwrap();
            assert_eq!(back, arr);
        }
    }

    #[test]
    fn dictionary_roundtrip() {
        let values: Vec<&str> = ["A", "F", "N", "R"]
            .iter()
            .cycle()
            .take(1000)
            .copied()
            .collect();
        let arr = Array::from_strs(values.iter().copied());
        let bytes = encode_chunk(&arr, Encoding::Dictionary).unwrap();
        let back = decode_chunk(&bytes, Encoding::Dictionary).unwrap();
        assert_eq!(back, arr);
        // Dictionary should be much smaller than plain for this data.
        let plain = encode_chunk(&arr, Encoding::Plain).unwrap();
        assert!(
            bytes.len() * 2 < plain.len(),
            "{} vs {}",
            bytes.len(),
            plain.len()
        );
    }

    #[test]
    fn dictionary_with_nulls() {
        let mut b = ArrayBuilder::new(DataType::Utf8);
        for i in 0..100 {
            if i % 10 == 0 {
                b.push_null();
            } else {
                b.push_str(if i % 2 == 0 { "even" } else { "odd" });
            }
        }
        let arr = b.finish();
        let bytes = encode_chunk(&arr, Encoding::Dictionary).unwrap();
        let back = decode_chunk(&bytes, Encoding::Dictionary).unwrap();
        assert_eq!(back, arr);
    }

    #[test]
    fn choose_encoding_heuristic() {
        let low_card = Array::from_strs(["x", "y"].iter().cycle().take(100).copied());
        assert_eq!(choose_encoding(&low_card), Encoding::Dictionary);
        let strings: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let high_card = Array::from_strs(strings.iter().map(|s| s.as_str()));
        assert_eq!(choose_encoding(&high_card), Encoding::Plain);
        let ints = Array::from_i64(vec![1; 100]);
        assert_eq!(choose_encoding(&ints), Encoding::Plain);
        // Short arrays stay plain regardless.
        let short = Array::from_strs(["x", "x", "x"]);
        assert_eq!(choose_encoding(&short), Encoding::Plain);
    }

    #[test]
    fn corrupt_chunks_rejected() {
        assert!(decode_chunk(&Bytes::new(), Encoding::Plain).is_err());
        assert!(decode_chunk(&Bytes::from_static(&[1, 2, 3]), Encoding::Dictionary).is_err());
        assert!(Encoding::from_tag(9).is_err());
        // Out-of-range dictionary index.
        let arr = Array::from_strs(["a", "a", "b"]);
        let bytes = encode_chunk(&arr, Encoding::Dictionary).unwrap();
        // Corrupting the index page should yield Err, not panic.
        let mut bad = bytes.to_vec();
        if bad.len() > 40 {
            bad[30] ^= 0xff;
        }
        let _ = decode_chunk(&Bytes::from(bad), Encoding::Dictionary);
    }
}
