//! Per-column-chunk statistics: min/max, null count, and a distinct-value
//! estimate. These are exactly the statistics the paper's Selectivity
//! Analyzer consumes ("min/max values for range filter selectivity, Number
//! of Distinct Values (NDV) for estimating aggregation cardinality, and row
//! count for computing reduction ratios").

use bytes::{Buf, BufMut};
use columnar::{Array, DataType, Scalar};

use crate::{ParqError, Result};

/// NDV computation switches from exact to saturation above this many
/// distinct values — large enough for every workload here, bounded so
/// stats collection stays O(1) memory.
pub const NDV_CAP: usize = 1 << 17;

/// Statistics for one column chunk (or one whole column, when merged).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Minimum non-null value (Null when the chunk is empty/all-null).
    pub min: Scalar,
    /// Maximum non-null value.
    pub max: Scalar,
    /// Number of null slots.
    pub null_count: u64,
    /// Number of rows.
    pub row_count: u64,
    /// Distinct non-null values; saturates at [`NDV_CAP`] (exact below).
    pub distinct: u64,
}

impl ColumnStats {
    /// Compute statistics for `array`.
    ///
    /// NDV is counted by inserting the vectorized column hash of each valid
    /// row into a `HashSet<u64>` — no per-value allocation, and float values
    /// are canonicalized by the hash kernel (`-0.0 == 0.0`, every NaN bit
    /// pattern counts as one value).
    pub fn compute(array: &Array) -> ColumnStats {
        let (min, max) = array.min_max();
        let mut hashes = vec![0u64; array.len()];
        columnar::kernels::hash::hash_column_into(array, &mut hashes)
            .expect("hash buffer sized to array");
        let mut set = std::collections::HashSet::with_capacity(1024);
        let mut saturated = false;
        for (i, &h) in hashes.iter().enumerate() {
            if !array.is_valid(i) {
                continue;
            }
            if set.len() >= NDV_CAP {
                saturated = true;
                break;
            }
            set.insert(h);
        }
        let distinct = if saturated { NDV_CAP } else { set.len() } as u64;
        ColumnStats {
            min,
            max,
            null_count: array.null_count() as u64,
            row_count: array.len() as u64,
            distinct,
        }
    }

    /// Merge chunk stats into table-level stats.
    ///
    /// NDV merging takes the max (a lower bound) plus a union correction of
    /// half the smaller side, then saturates — the standard coarse estimate
    /// a metastore keeps.
    pub fn merge(&self, other: &ColumnStats) -> ColumnStats {
        let min = match (self.min.is_null(), other.min.is_null()) {
            (true, _) => other.min.clone(),
            (_, true) => self.min.clone(),
            _ => {
                if self.min.total_cmp(&other.min).is_le() {
                    self.min.clone()
                } else {
                    other.min.clone()
                }
            }
        };
        let max = match (self.max.is_null(), other.max.is_null()) {
            (true, _) => other.max.clone(),
            (_, true) => self.max.clone(),
            _ => {
                if self.max.total_cmp(&other.max).is_ge() {
                    self.max.clone()
                } else {
                    other.max.clone()
                }
            }
        };
        let (lo, hi) = if self.distinct <= other.distinct {
            (self.distinct, other.distinct)
        } else {
            (other.distinct, self.distinct)
        };
        let distinct = (hi + lo / 2).min(NDV_CAP as u64);
        ColumnStats {
            min,
            max,
            null_count: self.null_count + other.null_count,
            row_count: self.row_count + other.row_count,
            distinct,
        }
    }

    /// Empty stats (identity for [`ColumnStats::merge`] except NDV).
    pub fn empty() -> ColumnStats {
        ColumnStats {
            min: Scalar::Null,
            max: Scalar::Null,
            null_count: 0,
            row_count: 0,
            distinct: 0,
        }
    }

    /// Serialize into `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        write_scalar(out, &self.min);
        write_scalar(out, &self.max);
        out.put_u64_le(self.null_count);
        out.put_u64_le(self.row_count);
        out.put_u64_le(self.distinct);
    }

    /// Deserialize from `buf` (advancing it).
    pub fn read(buf: &mut &[u8]) -> Result<ColumnStats> {
        let min = read_scalar(buf)?;
        let max = read_scalar(buf)?;
        if buf.remaining() < 24 {
            return Err(ParqError::Corrupt("truncated stats".into()));
        }
        Ok(ColumnStats {
            min,
            max,
            null_count: buf.get_u64_le(),
            row_count: buf.get_u64_le(),
            distinct: buf.get_u64_le(),
        })
    }
}

/// Serialize a scalar (tag + payload).
pub fn write_scalar(out: &mut Vec<u8>, s: &Scalar) {
    match s {
        Scalar::Null => out.put_u8(255),
        Scalar::Int64(v) => {
            out.put_u8(DataType::Int64.tag());
            out.put_i64_le(*v);
        }
        Scalar::Float64(v) => {
            out.put_u8(DataType::Float64.tag());
            out.put_f64_le(*v);
        }
        Scalar::Boolean(v) => {
            out.put_u8(DataType::Boolean.tag());
            out.put_u8(*v as u8);
        }
        Scalar::Utf8(v) => {
            out.put_u8(DataType::Utf8.tag());
            out.put_u32_le(v.len() as u32);
            out.put_slice(v.as_bytes());
        }
        Scalar::Date32(v) => {
            out.put_u8(DataType::Date32.tag());
            out.put_i32_le(*v);
        }
    }
}

/// Deserialize a scalar written by [`write_scalar`].
pub fn read_scalar(buf: &mut &[u8]) -> Result<Scalar> {
    if buf.is_empty() {
        return Err(ParqError::Corrupt("truncated scalar".into()));
    }
    let tag = buf.get_u8();
    if tag == 255 {
        return Ok(Scalar::Null);
    }
    let dt = DataType::from_tag(tag).map_err(ParqError::Columnar)?;
    macro_rules! need {
        ($n:expr) => {
            if buf.remaining() < $n {
                return Err(ParqError::Corrupt("truncated scalar payload".into()));
            }
        };
    }
    Ok(match dt {
        DataType::Int64 => {
            need!(8);
            Scalar::Int64(buf.get_i64_le())
        }
        DataType::Float64 => {
            need!(8);
            Scalar::Float64(buf.get_f64_le())
        }
        DataType::Boolean => {
            need!(1);
            Scalar::Boolean(buf.get_u8() == 1)
        }
        DataType::Utf8 => {
            need!(4);
            let len = buf.get_u32_le() as usize;
            need!(len);
            let s = std::str::from_utf8(&buf[..len])
                .map_err(|e| ParqError::Corrupt(format!("scalar not utf8: {e}")))?
                .to_string();
            buf.advance(len);
            Scalar::Utf8(s)
        }
        DataType::Date32 => {
            need!(4);
            Scalar::Date32(buf.get_i32_le())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::builder::ArrayBuilder;

    #[test]
    fn compute_basic() {
        let a = Array::from_i64(vec![5, 1, 5, 9, 1]);
        let s = ColumnStats::compute(&a);
        assert_eq!(s.min, Scalar::Int64(1));
        assert_eq!(s.max, Scalar::Int64(9));
        assert_eq!(s.row_count, 5);
        assert_eq!(s.null_count, 0);
        assert_eq!(s.distinct, 3);
    }

    #[test]
    fn compute_with_nulls() {
        let mut b = ArrayBuilder::new(DataType::Float64);
        b.push_f64(2.5);
        b.push_null();
        b.push_f64(-1.0);
        let s = ColumnStats::compute(&b.finish());
        assert_eq!(s.min, Scalar::Float64(-1.0));
        assert_eq!(s.max, Scalar::Float64(2.5));
        assert_eq!(s.null_count, 1);
        assert_eq!(s.distinct, 2);
    }

    #[test]
    fn compute_all_null() {
        let mut b = ArrayBuilder::new(DataType::Int64);
        b.push_null();
        let s = ColumnStats::compute(&b.finish());
        assert!(s.min.is_null());
        assert!(s.max.is_null());
        assert_eq!(s.distinct, 0);
    }

    #[test]
    fn merge_combines() {
        let a = ColumnStats::compute(&Array::from_i64(vec![1, 2, 3]));
        let b = ColumnStats::compute(&Array::from_i64(vec![10, 2]));
        let m = a.merge(&b);
        assert_eq!(m.min, Scalar::Int64(1));
        assert_eq!(m.max, Scalar::Int64(10));
        assert_eq!(m.row_count, 5);
        // NDV estimate: max(3,2) + 2/2 = 4 — exactly the distinct union here.
        assert_eq!(m.distinct, 4);
        // Merge with empty is identity-ish.
        let m2 = m.merge(&ColumnStats::empty());
        assert_eq!(m2.min, m.min);
        assert_eq!(m2.row_count, m.row_count);
    }

    #[test]
    fn merge_handles_null_bounds_on_either_side() {
        let vals = ColumnStats::compute(&Array::from_i64(vec![5, -3, 8]));
        let mut empty_chunk = ArrayBuilder::new(DataType::Int64);
        empty_chunk.push_null();
        empty_chunk.push_null();
        let all_null = ColumnStats::compute(&empty_chunk.finish());
        assert!(all_null.min.is_null());

        // Null bounds never win a min/max comparison, whichever side they
        // come from — and null/row counts still add.
        for m in [vals.merge(&all_null), all_null.merge(&vals)] {
            assert_eq!(m.min, Scalar::Int64(-3));
            assert_eq!(m.max, Scalar::Int64(8));
            assert_eq!(m.null_count, 2);
            assert_eq!(m.row_count, 5);
            assert_eq!(m.distinct, 3);
        }

        // Both sides all-null: bounds stay null, counts still add.
        let m = all_null.merge(&all_null);
        assert!(m.min.is_null());
        assert!(m.max.is_null());
        assert_eq!(m.null_count, 4);
        assert_eq!(m.row_count, 4);
        assert_eq!(m.distinct, 0);
    }

    #[test]
    fn merge_ndv_union_correction_is_symmetric_and_capped() {
        let mk = |distinct: u64| ColumnStats {
            min: Scalar::Int64(0),
            max: Scalar::Int64(1),
            null_count: 0,
            row_count: distinct,
            distinct,
        };
        // max(hi, lo) + lo/2, regardless of argument order.
        assert_eq!(mk(100).merge(&mk(40)).distinct, 120);
        assert_eq!(mk(40).merge(&mk(100)).distinct, 120);
        // Zero on one side contributes nothing.
        assert_eq!(mk(0).merge(&mk(7)).distinct, 7);
        // The estimate saturates at NDV_CAP instead of growing unbounded.
        let cap = NDV_CAP as u64;
        assert_eq!(mk(cap).merge(&mk(cap)).distinct, cap);
        assert_eq!(mk(cap - 1).merge(&mk(4)).distinct, cap);
    }

    #[test]
    fn merge_disjoint_and_overlapping_ranges() {
        let lo = ColumnStats::compute(&Array::from_i64(vec![1, 2, 3]));
        let hi = ColumnStats::compute(&Array::from_i64(vec![100, 200]));
        // Disjoint ranges: the merged bounds span both chunks.
        let m = lo.merge(&hi);
        assert_eq!(m.min, Scalar::Int64(1));
        assert_eq!(m.max, Scalar::Int64(200));

        // Overlapping ranges: one chunk strictly contains the other.
        let outer = ColumnStats::compute(&Array::from_i64(vec![-10, 50]));
        let inner = ColumnStats::compute(&Array::from_i64(vec![0, 10]));
        let m = outer.merge(&inner);
        assert_eq!(m.min, Scalar::Int64(-10));
        assert_eq!(m.max, Scalar::Int64(50));
        let m = inner.merge(&outer);
        assert_eq!(m.min, Scalar::Int64(-10));
        assert_eq!(m.max, Scalar::Int64(50));
    }

    #[test]
    fn serialization_roundtrip() {
        for s in [
            ColumnStats::compute(&Array::from_strs(["abc", "xyz", "abc"])),
            ColumnStats::compute(&Array::from_f64(vec![1.5])),
            ColumnStats::empty(),
            ColumnStats::compute(&Array::from_dates(vec![10561, -4])),
        ] {
            let mut out = Vec::new();
            s.write(&mut out);
            let mut buf = out.as_slice();
            let back = ColumnStats::read(&mut buf).unwrap();
            assert_eq!(back, s);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn scalar_roundtrip_all_types() {
        for s in [
            Scalar::Null,
            Scalar::Int64(-5),
            Scalar::Float64(std::f64::consts::PI),
            Scalar::Boolean(true),
            Scalar::Utf8("héllo".into()),
            Scalar::Date32(10561),
        ] {
            let mut out = Vec::new();
            write_scalar(&mut out, &s);
            let mut buf = out.as_slice();
            assert_eq!(read_scalar(&mut buf).unwrap(), s);
        }
    }

    #[test]
    fn truncated_scalar_is_error() {
        let mut out = Vec::new();
        write_scalar(&mut out, &Scalar::Utf8("hello".into()));
        let mut buf = &out[..out.len() - 2];
        assert!(read_scalar(&mut buf).is_err());
        let mut empty: &[u8] = &[];
        assert!(read_scalar(&mut empty).is_err());
    }

    #[test]
    fn ndv_normalizes_float_zeros_and_nans() {
        let a = Array::from_f64(vec![
            0.0,
            -0.0,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_0000_beef),
            1.5,
        ]);
        let s = ColumnStats::compute(&a);
        // {0.0/-0.0}, {NaN payloads}, {1.5} — three distinct values.
        assert_eq!(s.distinct, 3);
    }

    #[test]
    fn ndv_saturates() {
        let vals: Vec<i64> = (0..(NDV_CAP as i64 + 100)).collect();
        let s = ColumnStats::compute(&Array::from_i64(vals));
        assert_eq!(s.distinct, NDV_CAP as u64);
    }
}
