//! `parq` — a Parquet-like columnar file format.
//!
//! Provides the storage-format properties the paper's system relies on:
//!
//! * **row groups** of configurable size, each holding one **column chunk**
//!   per column, so readers fetch only the columns a query references;
//! * per-chunk **statistics** (min/max, null count, distinct-value
//!   estimate) feeding both row-group pruning and the connector's
//!   Selectivity Analyzer (the paper's Hive-metastore statistics);
//! * **plain** and **dictionary** page encodings;
//! * pluggable **compression** per file via [`lzcodec`] (None / Snap / Gz /
//!   Zst), the knob Figure 6 sweeps.
//!
//! Layout:
//!
//! ```text
//! magic "PQL1"
//! column chunk data (compressed pages), row group by row group
//! footer: schema, codec, row-group directory with per-chunk
//!         offsets/lengths/encodings/statistics
//! footer length u32 | magic "PQL1"
//! ```
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use columnar::prelude::*;
//! use parq::{ParqReader, ParqWriter, WriteOptions};
//!
//! let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64, false)]));
//! let batch = RecordBatch::try_new(
//!     schema.clone(),
//!     vec![Arc::new(Array::from_i64((0..100).collect()))],
//! ).unwrap();
//!
//! let mut w = ParqWriter::new(schema, WriteOptions::default());
//! w.write(&batch).unwrap();
//! let bytes = w.finish().unwrap();
//!
//! let r = ParqReader::open(bytes.into()).unwrap();
//! assert_eq!(r.total_rows(), 100);
//! let back = r.read_all(None).unwrap();
//! assert_eq!(back[0].num_rows(), 100);
//! ```

#![warn(missing_docs)]

pub mod encoding;
pub mod reader;
pub mod stats;
pub mod writer;

pub use reader::{ParqReader, RangePredicate};
pub use stats::ColumnStats;
pub use writer::{ParqWriter, WriteOptions};

use std::fmt;

/// Magic bytes bracketing every file.
pub const MAGIC: &[u8; 4] = b"PQL1";

/// Errors from reading/writing parq files.
#[derive(Debug)]
pub enum ParqError {
    /// Structurally invalid file.
    Corrupt(String),
    /// Error from the columnar layer.
    Columnar(columnar::ColumnarError),
    /// Error from the compression layer.
    Codec(lzcodec::CodecError),
    /// API misuse (e.g. schema mismatch on write).
    Invalid(String),
}

impl fmt::Display for ParqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParqError::Corrupt(m) => write!(f, "corrupt parq file: {m}"),
            ParqError::Columnar(e) => write!(f, "columnar error: {e}"),
            ParqError::Codec(e) => write!(f, "codec error: {e}"),
            ParqError::Invalid(m) => write!(f, "invalid parq operation: {m}"),
        }
    }
}

impl std::error::Error for ParqError {}

impl From<columnar::ColumnarError> for ParqError {
    fn from(e: columnar::ColumnarError) -> Self {
        ParqError::Columnar(e)
    }
}

impl From<lzcodec::CodecError> for ParqError {
    fn from(e: lzcodec::CodecError) -> Self {
        ParqError::Codec(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, ParqError>;
