//! The Laghos-like dataset: a LAGrangian High-Order Solver fluid-dynamics
//! output (paper §5.1).
//!
//! Shape: 10 columns — `vertex_id` plus nine doubles (`x`, `y`, `z`, `e`,
//! `rho`, `p`, `vx`, `vy`, `vz`). Coordinates are uniform over `[0, 4)` so
//! the paper's `BETWEEN 0.8 AND 3.2` predicate on each of x/y/z keeps
//! `0.6³ ≈ 21.6 %` of rows — matching the paper's observed 5.1 / 24 GB.
//! Each file covers a *disjoint* vertex-id range (a partitioned mesh), and
//! each vertex appears [`LaghosConfig::rows_per_vertex`] times within its
//! file, giving the GROUP BY real work while keeping per-object groups
//! complete (the property the paper's full-chain pushdown relies on).

use std::sync::Arc;

use columnar::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::loader::{LoadedDataset, TableLoader};

/// Laghos generator configuration.
#[derive(Debug, Clone)]
pub struct LaghosConfig {
    /// Number of files (paper: 256).
    pub files: usize,
    /// Rows per file (paper: 4,194,304).
    pub rows_per_file: usize,
    /// Rows sharing one vertex id within a file.
    pub rows_per_vertex: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LaghosConfig {
    fn default() -> Self {
        LaghosConfig {
            files: 16,
            rows_per_file: 64 * 1024,
            rows_per_vertex: 8,
            seed: 0x1a6005,
        }
    }
}

/// The 10-column Laghos schema.
pub fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("vertex_id", DataType::Int64, false),
        Field::new("x", DataType::Float64, false),
        Field::new("y", DataType::Float64, false),
        Field::new("z", DataType::Float64, false),
        Field::new("e", DataType::Float64, false),
        Field::new("rho", DataType::Float64, false),
        Field::new("p", DataType::Float64, false),
        Field::new("vx", DataType::Float64, false),
        Field::new("vy", DataType::Float64, false),
        Field::new("vz", DataType::Float64, false),
    ]))
}

/// Generate the batch for file `file_idx`.
pub fn generate_file(config: &LaghosConfig, file_idx: usize) -> RecordBatch {
    let n = config.rows_per_file;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ (file_idx as u64).wrapping_mul(0x9e37));
    let vertex_base = (file_idx * config.rows_per_file / config.rows_per_vertex.max(1)) as i64;

    let mut vertex_id = Vec::with_capacity(n);
    let mut cols: Vec<Vec<f64>> = (0..9).map(|_| Vec::with_capacity(n)).collect();
    // A vertex has ONE mesh position shared by all of its rows (its rows
    // are repeated observations of the same point), so the spatial filter
    // keeps or drops whole vertices — which is what gives the paper's
    // aggregation step its strong data reduction.
    let (mut vx, mut vy, mut vz) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..n {
        let k = config.rows_per_vertex.max(1);
        vertex_id.push(vertex_base + (i / k) as i64);
        if i % k == 0 {
            vx = rng.gen_range(0.0..4.0);
            vy = rng.gen_range(0.0..4.0);
            vz = rng.gen_range(0.0..4.0);
        }
        let (x, y, z) = (vx, vy, vz);
        // Internal energy correlates with position plus noise, so per-vertex
        // averages vary smoothly (gives the ORDER BY avg(e) a meaningful
        // ordering).
        let e = (x * 1.3 + y * 0.7 + z * 0.4).sin().abs() * 10.0 + rng.gen_range(0.0..0.5);
        let rho = 1.0 + rng.gen_range(-0.1..0.1);
        let p = rho * e * 0.4;
        cols[0].push(x);
        cols[1].push(y);
        cols[2].push(z);
        cols[3].push(e);
        cols[4].push(rho);
        cols[5].push(p);
        cols[6].push(rng.gen_range(-1.0..1.0));
        cols[7].push(rng.gen_range(-1.0..1.0));
        cols[8].push(rng.gen_range(-1.0..1.0));
    }
    let mut arrays: Vec<ArrayRef> = Vec::with_capacity(10);
    arrays.push(Arc::new(Array::from_i64(vertex_id)));
    for c in cols {
        arrays.push(Arc::new(Array::from_f64(c)));
    }
    RecordBatch::try_new(schema(), arrays).expect("schema matches construction")
}

/// Generate + store + register the dataset as table `laghos`.
pub fn load(loader: &TableLoader<'_>, config: &LaghosConfig) -> LoadedDataset {
    loader.load("laghos", schema(), config.files, |i| {
        generate_file(config, i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_pass_rate_matches_paper_ratio() {
        let config = LaghosConfig {
            files: 1,
            rows_per_file: 50_000,
            ..Default::default()
        };
        let b = generate_file(&config, 0);
        let pass = (0..b.num_rows())
            .filter(|&r| {
                [1, 2, 3].iter().all(|&c| {
                    let v = b.column(c).scalar_at(r).as_f64().unwrap();
                    (0.8..=3.2).contains(&v)
                })
            })
            .count();
        let rate = pass as f64 / b.num_rows() as f64;
        assert!(
            (rate - 0.216).abs() < 0.02,
            "x,y,z BETWEEN filter keeps {rate}, expected ≈0.216"
        );
    }

    #[test]
    fn vertex_ids_disjoint_across_files_and_repeated_within() {
        let config = LaghosConfig {
            files: 3,
            rows_per_file: 1024,
            rows_per_vertex: 8,
            ..Default::default()
        };
        let b0 = generate_file(&config, 0);
        let b1 = generate_file(&config, 1);
        let max0 = b0.column(0).min_max().1.as_i64().unwrap();
        let min1 = b1.column(0).min_max().0.as_i64().unwrap();
        assert!(
            max0 < min1,
            "file ranges must not overlap: {max0} vs {min1}"
        );
        // Multiplicity 8 within a file.
        let ids = b0.column(0).as_i64().unwrap();
        let first = ids.values[0];
        assert_eq!(ids.values.iter().filter(|&&v| v == first).count(), 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let config = LaghosConfig {
            files: 1,
            rows_per_file: 1000,
            ..Default::default()
        };
        let a = generate_file(&config, 0);
        let b = generate_file(&config, 0);
        assert_eq!(a, b);
        // Different files differ.
        let c = generate_file(&config, 1);
        assert_ne!(a.column(1), c.column(1));
    }
}
