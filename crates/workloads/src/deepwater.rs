//! The Deep Water Impact-like dataset: an asteroid-ocean-impact simulation
//! (paper §5.1) — one snapshot (timestep) per file, 4 columns.
//!
//! `v02` (a velocity magnitude) is distributed so the paper's
//! `WHERE v02 > 0.1` keeps ≈18 % of rows (paper: 5.37 / 30 GB). `rowid`
//! linearizes a 500×500×d spatial grid, which is what the paper's
//! projection `(rowid % (500*500)) / 500` decodes back into a Y
//! coordinate.

use std::sync::Arc;

use columnar::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::loader::{LoadedDataset, TableLoader};

/// Deep Water generator configuration.
#[derive(Debug, Clone)]
pub struct DeepWaterConfig {
    /// Number of files = timesteps (paper: 64).
    pub files: usize,
    /// Rows per file (paper: 27,000,000).
    pub rows_per_file: usize,
    /// Fraction of rows with `v02 > 0.1`.
    pub high_velocity_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeepWaterConfig {
    fn default() -> Self {
        DeepWaterConfig {
            files: 16,
            rows_per_file: 128 * 1024,
            high_velocity_fraction: 0.18,
            seed: 0xd33b07,
        }
    }
}

/// The 4-column Deep Water schema.
pub fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("rowid", DataType::Int64, false),
        Field::new("v02", DataType::Float64, false),
        Field::new("timestep", DataType::Int64, false),
        Field::new("v03", DataType::Float64, false),
    ]))
}

/// Generate the batch for file (timestep) `file_idx`.
pub fn generate_file(config: &DeepWaterConfig, file_idx: usize) -> RecordBatch {
    let n = config.rows_per_file;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ (file_idx as u64).wrapping_mul(0x5851));
    let mut rowid = Vec::with_capacity(n);
    let mut v02 = Vec::with_capacity(n);
    let mut timestep = Vec::with_capacity(n);
    let mut v03 = Vec::with_capacity(n);
    for i in 0..n {
        rowid.push(i as i64);
        let hot: bool = rng.gen_bool(config.high_velocity_fraction);
        // Velocities are quantized, as real simulation output effectively
        // is after error-bounded post-processing: the calm-water bulk
        // (≈82 % of cells) draws from a few hundred distinct values. This
        // value repetition is what makes scientific datasets compress well
        // (the property Figure 6 exercises).
        v02.push(if hot {
            rng.gen_range(51..=500) as f64 * 0.002
        } else {
            rng.gen_range(0..250) as f64 * 0.0004
        });
        timestep.push(file_idx as i64);
        v03.push(rng.gen_range(-50..=50) as f64 * 0.01);
    }
    RecordBatch::try_new(
        schema(),
        vec![
            Arc::new(Array::from_i64(rowid)),
            Arc::new(Array::from_f64(v02)),
            Arc::new(Array::from_i64(timestep)),
            Arc::new(Array::from_f64(v03)),
        ],
    )
    .expect("schema matches construction")
}

/// Generate + store + register the dataset as table `deepwater`.
pub fn load(loader: &TableLoader<'_>, config: &DeepWaterConfig) -> LoadedDataset {
    loader.load("deepwater", schema(), config.files, |i| {
        generate_file(config, i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_pass_rate_matches_paper() {
        let config = DeepWaterConfig {
            files: 1,
            rows_per_file: 50_000,
            ..Default::default()
        };
        let b = generate_file(&config, 0);
        let pass = b
            .column(1)
            .as_f64()
            .unwrap()
            .values
            .iter()
            .filter(|&&v| v > 0.1)
            .count();
        let rate = pass as f64 / b.num_rows() as f64;
        assert!((rate - 0.18).abs() < 0.015, "v02 > 0.1 keeps {rate}");
    }

    #[test]
    fn one_timestep_per_file() {
        let config = DeepWaterConfig {
            files: 2,
            rows_per_file: 100,
            ..Default::default()
        };
        for f in 0..2 {
            let b = generate_file(&config, f);
            let (min, max) = b.column(2).min_max();
            assert_eq!(min, Scalar::Int64(f as i64));
            assert_eq!(max, Scalar::Int64(f as i64));
        }
    }

    #[test]
    fn rowid_projection_decodes_grid() {
        // The paper's expression (rowid % 250000)/500 ∈ [0, 500).
        let config = DeepWaterConfig {
            files: 1,
            rows_per_file: 300_000,
            ..Default::default()
        };
        let b = generate_file(&config, 0);
        let ids = b.column(0).as_i64().unwrap();
        let max_y = ids
            .values
            .iter()
            .map(|&r| (r % 250_000) / 500)
            .max()
            .unwrap();
        assert_eq!(max_y, 499);
    }
}
