//! A dbgen-style TPC-H `lineitem` generator (the decision-support side of
//! the paper's evaluation).
//!
//! Implements the TPC-H specification's column distributions for every
//! column Q1 touches, and textbook fillers for the rest:
//!
//! * `quantity` uniform 1..=50; `extendedprice` derived from a synthetic
//!   part retail price × quantity; `discount` uniform 0.00..=0.10;
//!   `tax` uniform 0.00..=0.08 (spec §4.2.3);
//! * `shipdate = orderdate + uniform(1..=121)`, with `orderdate` uniform
//!   over 1992-01-01 .. 1998-08-02 (spec population rules) — so the Q1
//!   predicate `shipdate <= DATE '1998-12-01' - 90 days` keeps ≈98 % of
//!   rows, the paper's "minimal data movement reduction" case;
//! * `returnflag ∈ {R, A}` when the receipt predates 1995-06-17, else `N`;
//!   `linestatus = O` when `shipdate` is after 1995-06-17, else `F` — Q1
//!   therefore yields the classic 4 groups.

use std::sync::Arc;

use columnar::builder::ArrayBuilder;
use columnar::datatype::days_from_civil;
use columnar::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::loader::{LoadedDataset, TableLoader};

/// TPC-H generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Number of lineitem files.
    pub files: usize,
    /// Rows per file (SF-1 dbgen ⇒ ~6 M rows total).
    pub rows_per_file: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            files: 8,
            rows_per_file: 128 * 1024,
            seed: 0x7bc41,
        }
    }
}

/// The 16-column lineitem schema.
pub fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("orderkey", DataType::Int64, false),
        Field::new("partkey", DataType::Int64, false),
        Field::new("suppkey", DataType::Int64, false),
        Field::new("linenumber", DataType::Int64, false),
        Field::new("quantity", DataType::Float64, false),
        Field::new("extendedprice", DataType::Float64, false),
        Field::new("discount", DataType::Float64, false),
        Field::new("tax", DataType::Float64, false),
        Field::new("returnflag", DataType::Utf8, false),
        Field::new("linestatus", DataType::Utf8, false),
        Field::new("shipdate", DataType::Date32, false),
        Field::new("commitdate", DataType::Date32, false),
        Field::new("receiptdate", DataType::Date32, false),
        Field::new("shipinstruct", DataType::Utf8, false),
        Field::new("shipmode", DataType::Utf8, false),
        Field::new("comment", DataType::Utf8, false),
    ]))
}

const SHIP_INSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const SHIP_MODE: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const NOUNS: [&str; 8] = [
    "packages",
    "requests",
    "accounts",
    "deposits",
    "foxes",
    "ideas",
    "theodolites",
    "pinto beans",
];
const VERBS: [&str; 8] = [
    "sleep",
    "wake",
    "haggle",
    "nag",
    "cajole",
    "integrate",
    "detect",
    "boost",
];

/// Generate the batch for lineitem file `file_idx`.
pub fn generate_file(config: &TpchConfig, file_idx: usize) -> RecordBatch {
    let n = config.rows_per_file;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ (file_idx as u64).wrapping_mul(0xc0ffee));
    let start_date = days_from_civil(1992, 1, 1);
    let end_date = days_from_civil(1998, 8, 2);
    let cutoff = days_from_civil(1995, 6, 17);

    let mut orderkey = ArrayBuilder::new(DataType::Int64);
    let mut partkey = ArrayBuilder::new(DataType::Int64);
    let mut suppkey = ArrayBuilder::new(DataType::Int64);
    let mut linenumber = ArrayBuilder::new(DataType::Int64);
    let mut quantity = ArrayBuilder::new(DataType::Float64);
    let mut extendedprice = ArrayBuilder::new(DataType::Float64);
    let mut discount = ArrayBuilder::new(DataType::Float64);
    let mut tax = ArrayBuilder::new(DataType::Float64);
    let mut returnflag = ArrayBuilder::new(DataType::Utf8);
    let mut linestatus = ArrayBuilder::new(DataType::Utf8);
    let mut shipdate = ArrayBuilder::new(DataType::Date32);
    let mut commitdate = ArrayBuilder::new(DataType::Date32);
    let mut receiptdate = ArrayBuilder::new(DataType::Date32);
    let mut shipinstruct = ArrayBuilder::new(DataType::Utf8);
    let mut shipmode = ArrayBuilder::new(DataType::Utf8);
    let mut comment = ArrayBuilder::new(DataType::Utf8);

    let mut order: i64 = (file_idx * n) as i64 * 2;
    let mut line_in_order = 0i64;
    let mut lines_this_order = rng.gen_range(1..=7);
    let mut orderdate = rng.gen_range(start_date..=end_date);
    for i in 0..n {
        if line_in_order == lines_this_order {
            order += rng.gen_range(1..=4);
            line_in_order = 0;
            lines_this_order = rng.gen_range(1..=7);
            orderdate = rng.gen_range(start_date..=end_date);
        }
        line_in_order += 1;
        let pk = rng.gen_range(1..=200_000i64);
        let qty = rng.gen_range(1..=50i64) as f64;
        // dbgen: retailprice(p) = 90000 + (p/10)%20001 + 100*(p%1000), /100.
        let retail = (90_000 + (pk / 10) % 20_001 + 100 * (pk % 1_000)) as f64 / 100.0;
        let ship = orderdate + rng.gen_range(1..=121);
        let commit = orderdate + rng.gen_range(30..=90);
        let receipt = ship + rng.gen_range(1..=30);
        orderkey.push_i64(order);
        partkey.push_i64(pk);
        suppkey.push_i64(rng.gen_range(1..=10_000));
        linenumber.push_i64(line_in_order);
        quantity.push_f64(qty);
        extendedprice.push_f64(retail * qty);
        discount.push_f64(rng.gen_range(0..=10) as f64 / 100.0);
        tax.push_f64(rng.gen_range(0..=8) as f64 / 100.0);
        returnflag.push_str(if receipt <= cutoff {
            if rng.gen_bool(0.5) {
                "R"
            } else {
                "A"
            }
        } else {
            "N"
        });
        linestatus.push_str(if ship > cutoff { "O" } else { "F" });
        shipdate.push(Scalar::Date32(ship)).expect("date");
        commitdate.push(Scalar::Date32(commit)).expect("date");
        receiptdate.push(Scalar::Date32(receipt)).expect("date");
        shipinstruct.push_str(SHIP_INSTRUCT[rng.gen_range(0..SHIP_INSTRUCT.len())]);
        shipmode.push_str(SHIP_MODE[rng.gen_range(0..SHIP_MODE.len())]);
        comment.push_str(&format!(
            "{} {} {}",
            NOUNS[i % NOUNS.len()],
            VERBS[(i / 3) % VERBS.len()],
            NOUNS[(i / 7) % NOUNS.len()],
        ));
    }

    RecordBatch::try_new(
        schema(),
        vec![
            Arc::new(orderkey.finish()),
            Arc::new(partkey.finish()),
            Arc::new(suppkey.finish()),
            Arc::new(linenumber.finish()),
            Arc::new(quantity.finish()),
            Arc::new(extendedprice.finish()),
            Arc::new(discount.finish()),
            Arc::new(tax.finish()),
            Arc::new(returnflag.finish()),
            Arc::new(linestatus.finish()),
            Arc::new(shipdate.finish()),
            Arc::new(commitdate.finish()),
            Arc::new(receiptdate.finish()),
            Arc::new(shipinstruct.finish()),
            Arc::new(shipmode.finish()),
            Arc::new(comment.finish()),
        ],
    )
    .expect("schema matches construction")
}

/// Generate + store + register the dataset as table `lineitem`.
pub fn load(loader: &TableLoader<'_>, config: &TpchConfig) -> LoadedDataset {
    loader.load("lineitem", schema(), config.files, |i| {
        generate_file(config, i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RecordBatch {
        generate_file(
            &TpchConfig {
                files: 1,
                rows_per_file: 40_000,
                ..Default::default()
            },
            0,
        )
    }

    #[test]
    fn q1_filter_keeps_most_rows() {
        let b = small();
        let threshold = days_from_civil(1998, 12, 1) - 90;
        let ship = b.column_by_name("shipdate").unwrap().as_date32().unwrap();
        let kept = ship.values.iter().filter(|&&d| d <= threshold).count();
        let rate = kept as f64 / b.num_rows() as f64;
        assert!(rate > 0.95 && rate < 1.0, "Q1 keeps {rate}");
    }

    #[test]
    fn q1_produces_four_groups() {
        let b = small();
        let rf = b.column_by_name("returnflag").unwrap().as_utf8().unwrap();
        let ls = b.column_by_name("linestatus").unwrap().as_utf8().unwrap();
        let mut groups = std::collections::HashSet::new();
        for i in 0..b.num_rows() {
            groups.insert((rf.value(i).to_string(), ls.value(i).to_string()));
        }
        let mut got: Vec<(String, String)> = groups.into_iter().collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                ("A".into(), "F".into()),
                ("N".into(), "F".into()),
                ("N".into(), "O".into()),
                ("R".into(), "F".into()),
            ]
        );
    }

    #[test]
    fn value_ranges_match_spec() {
        let b = small();
        let q = b.column_by_name("quantity").unwrap().min_max();
        assert!(q.0.as_f64().unwrap() >= 1.0 && q.1.as_f64().unwrap() <= 50.0);
        let d = b.column_by_name("discount").unwrap().min_max();
        assert!(d.0.as_f64().unwrap() >= 0.0 && d.1.as_f64().unwrap() <= 0.10 + 1e-9);
        let t = b.column_by_name("tax").unwrap().min_max();
        assert!(t.1.as_f64().unwrap() <= 0.08 + 1e-9);
        // receiptdate after shipdate.
        let ship = b.column_by_name("shipdate").unwrap().as_date32().unwrap();
        let rcpt = b
            .column_by_name("receiptdate")
            .unwrap()
            .as_date32()
            .unwrap();
        assert!(ship.values.iter().zip(&rcpt.values).all(|(s, r)| r > s));
    }

    #[test]
    fn orders_have_multiple_lines() {
        let b = small();
        let ok = b.column_by_name("orderkey").unwrap().as_i64().unwrap();
        let ln = b.column_by_name("linenumber").unwrap().as_i64().unwrap();
        // linenumber restarts at 1 for each new order.
        assert_eq!(ln.values[0], 1);
        let mut max_line = 0;
        for i in 1..1000 {
            if ok.values[i] == ok.values[i - 1] {
                assert_eq!(ln.values[i], ln.values[i - 1] + 1);
            } else {
                assert_eq!(ln.values[i], 1);
            }
            max_line = max_line.max(ln.values[i]);
        }
        assert!(max_line >= 2, "orders should span multiple lineitems");
    }
}
