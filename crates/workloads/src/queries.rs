//! The Table-2 queries, in the engine's SQL dialect.
//!
//! Differences from the paper's shorthand are purely syntactic: the
//! paper's `WHERE x, y, z BETWEEN 0.8 AND 3.2` is written as an explicit
//! conjunction, and aggregates that feed `ORDER BY` carry aliases.

/// Laghos: filter on the spatial box, GROUP BY vertex, top-100 by mean
/// energy. Plan: `TableScan → Filter → Aggregation → TopN`.
pub const LAGHOS: &str = "SELECT min(vertex_id) AS vid, min(x) AS min_x, min(y) AS min_y, \
     min(z) AS min_z, avg(e) AS e \
     FROM laghos \
     WHERE x BETWEEN 0.8 AND 3.2 AND y BETWEEN 0.8 AND 3.2 AND z BETWEEN 0.8 AND 3.2 \
     GROUP BY vertex_id \
     ORDER BY e \
     LIMIT 100";

/// Deep Water: decode the Y grid coordinate from `rowid` and take the
/// per-timestep maximum over high-velocity cells.
/// Plan: `TableScan → Filter → Project → Aggregation`.
pub const DEEPWATER: &str = "SELECT MAX((rowid % (500*500))/500) AS max_y, timestep \
     FROM deepwater \
     WHERE v02 > 0.1 \
     GROUP BY timestep";

/// TPC-H Query 1 (pricing summary report), verbatim modulo aliases.
/// Plan: `TableScan → Filter → Project → Aggregation → Sort`.
pub const TPCH_Q1: &str = "SELECT returnflag, linestatus, \
     SUM(quantity) AS sum_qty, \
     SUM(extendedprice) AS sum_base_price, \
     SUM(extendedprice * (1 - discount)) AS sum_disc_price, \
     SUM(extendedprice * (1 - discount) * (1 + tax)) AS sum_charge, \
     AVG(quantity) AS avg_qty, \
     AVG(extendedprice) AS avg_price, \
     AVG(discount) AS avg_disc, \
     COUNT(*) AS count_order \
     FROM lineitem \
     WHERE shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY \
     GROUP BY returnflag, linestatus \
     ORDER BY returnflag, linestatus";

/// `(dataset name, query, expected optimized plan chain)` for Table 2.
pub const TABLE2: [(&str, &str, &str); 3] = [
    (
        "Laghos",
        LAGHOS,
        "TableScan -> Filter -> Aggregation -> TopN",
    ),
    (
        "Deep Water",
        DEEPWATER,
        "TableScan -> Filter -> Project -> Aggregation",
    ),
    (
        "TPC-H",
        TPCH_Q1,
        "TableScan -> Filter -> Project -> Aggregation -> Sort",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_parse() {
        for (name, sql, _) in TABLE2 {
            sqlparse::parse(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
