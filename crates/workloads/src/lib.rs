//! `workloads` — synthetic reproductions of the paper's three evaluation
//! datasets, their loaders, and the Table-2 queries.
//!
//! | paper dataset | here | shape preserved |
//! |---|---|---|
//! | Laghos (LANL fluid dynamics; 256 files × 4.19 M rows × 10 cols, 24 GB) | [`laghos`] | schema (vertex_id, x, y, z, e + 5 extra doubles); x/y/z uniform over `[0, 4)` so the paper's `BETWEEN 0.8 AND 3.2` filter keeps `0.6³ ≈ 21.6 %` of rows (paper: 5.1/24 GB ≈ 21 %); vertex ids repeat ~8× within a file and never span files |
//! | Deep Water Impact (64 files × 27 M rows × 4 cols, 30 GB) | [`deepwater`] | one timestep per file (so GROUP BY timestep groups are object-disjoint); `P(v02 > 0.1) ≈ 18 %` (paper: 5.37/30 GB ≈ 18 %) |
//! | TPC-H `lineitem` + Q1 | [`tpch`] | dbgen-style column distributions for every Q1-relevant column; the shipdate filter keeps ~98 % (paper: 192/194 MB) |
//!
//! Row counts are configurable: generate small for tests, large for the
//! benchmark harness. The cost model is linear in bytes, so shapes are
//! scale-invariant.

#![warn(missing_docs)]

pub mod deepwater;
pub mod laghos;
pub mod loader;
pub mod queries;
pub mod tpch;

pub use deepwater::DeepWaterConfig;
pub use laghos::LaghosConfig;
pub use loader::{LoadedDataset, TableLoader};
pub use tpch::TpchConfig;
