//! Common machinery: generate per-file batches in parallel, write them as
//! parq objects, gather statistics, and register the table in the
//! metastore.

use columnar::{RecordBatch, SchemaRef};
use dsq::catalog::{Metastore, ObjectLocation, TableMeta, TableStats};
use lzcodec::CodecKind;
use objstore::ObjectStore;
use parq::{ColumnStats, ParqReader, WriteOptions};
use rayon::prelude::*;

/// Where a loaded dataset ended up.
#[derive(Debug, Clone)]
pub struct LoadedDataset {
    /// Registered table name.
    pub table: String,
    /// Bucket holding the objects.
    pub bucket: String,
    /// Number of objects (files).
    pub files: usize,
    /// Total rows.
    pub total_rows: u64,
    /// Total stored bytes (post-compression).
    pub total_bytes: u64,
    /// Total uncompressed bytes (pre-compression footprint).
    pub uncompressed_bytes: u64,
}

/// Generic dataset loader.
pub struct TableLoader<'a> {
    /// Target object store.
    pub store: &'a ObjectStore,
    /// Target metastore.
    pub metastore: &'a Metastore,
    /// Bucket name (created if missing).
    pub bucket: String,
    /// Connector the table is served by.
    pub connector: String,
    /// Compression codec for the parq files.
    pub codec: CodecKind,
    /// Rows per row group inside each file.
    pub row_group_rows: usize,
}

impl<'a> TableLoader<'a> {
    /// Sensible defaults over a store/metastore pair.
    pub fn new(store: &'a ObjectStore, metastore: &'a Metastore) -> Self {
        TableLoader {
            store,
            metastore,
            bucket: "lake".into(),
            connector: "ocs".into(),
            codec: CodecKind::None,
            row_group_rows: 64 * 1024,
        }
    }

    /// Generate `files` objects with `gen(file_idx) -> batch`, write and
    /// register them as `table`.
    pub fn load(
        &self,
        table: &str,
        schema: SchemaRef,
        files: usize,
        gen: impl Fn(usize) -> RecordBatch + Sync,
    ) -> LoadedDataset {
        self.store.ensure_bucket(&self.bucket);

        // Generate + encode files in parallel (rayon), then store serially.
        let encoded: Vec<(String, Vec<u8>, u64, u64)> = (0..files)
            .into_par_iter()
            .map(|i| {
                let batch = gen(i);
                let rows = batch.num_rows() as u64;
                let uncompressed = batch.byte_size() as u64;
                let bytes = parq::writer::write_file(
                    schema.clone(),
                    &[batch],
                    WriteOptions {
                        codec: self.codec,
                        row_group_rows: self.row_group_rows,
                        enable_dictionary: true,
                    },
                )
                .expect("generated batch matches schema");
                (
                    format!("{table}/part-{i:05}.parq"),
                    bytes,
                    rows,
                    uncompressed,
                )
            })
            .collect();

        let mut objects = Vec::with_capacity(files);
        let mut total_rows = 0u64;
        let mut total_bytes = 0u64;
        let mut uncompressed_bytes = 0u64;
        let mut col_stats: Vec<ColumnStats> = vec![ColumnStats::empty(); schema.len()];
        for (key, bytes, rows, uncompressed) in encoded {
            total_rows += rows;
            total_bytes += bytes.len() as u64;
            uncompressed_bytes += uncompressed;
            // Per-object (partition-level) statistics from the footer,
            // merged into the table-level metastore stats.
            let reader = ParqReader::open(bytes.clone().into()).expect("own file parses");
            let mut object_cols = Vec::with_capacity(schema.len());
            for (c, stat) in col_stats.iter_mut().enumerate().take(schema.len()) {
                let merged = reader.column_stats(c).expect("column in range");
                *stat = stat.merge(&merged);
                object_cols.push(merged);
            }
            objects.push(ObjectLocation {
                bucket: self.bucket.clone(),
                key: key.clone(),
                rows,
                bytes: bytes.len() as u64,
                columns: object_cols,
            });
            self.store
                .put_object(&self.bucket, &key, bytes.into())
                .expect("bucket exists");
        }

        self.metastore.register(TableMeta {
            name: table.to_string(),
            connector: self.connector.clone(),
            schema,
            objects,
            stats: TableStats {
                row_count: total_rows,
                columns: col_stats,
            },
        });

        LoadedDataset {
            table: table.to_string(),
            bucket: self.bucket.clone(),
            files,
            total_rows,
            total_bytes,
            uncompressed_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::prelude::*;
    use std::sync::Arc;

    #[test]
    fn load_registers_objects_and_stats() {
        let store = ObjectStore::new();
        let meta = Metastore::new();
        let loader = TableLoader::new(&store, &meta);
        let schema: SchemaRef =
            Arc::new(Schema::new(vec![Field::new("v", DataType::Int64, false)]));
        let ds = loader.load("demo", schema, 3, |i| {
            RecordBatch::try_new(
                Arc::new(Schema::new(vec![Field::new("v", DataType::Int64, false)])),
                vec![Arc::new(Array::from_i64(
                    (i as i64 * 10..(i as i64 + 1) * 10).collect(),
                ))],
            )
            .unwrap()
        });
        assert_eq!(ds.files, 3);
        assert_eq!(ds.total_rows, 30);
        assert_eq!(store.list("lake", "demo/").unwrap().len(), 3);
        let t = meta.table("demo").unwrap();
        assert_eq!(t.stats.row_count, 30);
        assert_eq!(t.objects.len(), 3);
        // Table-level min/max span all files.
        assert_eq!(t.stats.columns[0].min, Scalar::Int64(0));
        assert_eq!(t.stats.columns[0].max, Scalar::Int64(29));
    }

    #[test]
    fn compression_reflected_in_sizes() {
        let store = ObjectStore::new();
        let meta = Metastore::new();
        let mut loader = TableLoader::new(&store, &meta);
        loader.codec = CodecKind::Zst;
        let schema: SchemaRef =
            Arc::new(Schema::new(vec![Field::new("v", DataType::Int64, false)]));
        let ds = loader.load("zc", schema, 1, |_| {
            RecordBatch::try_new(
                Arc::new(Schema::new(vec![Field::new("v", DataType::Int64, false)])),
                vec![Arc::new(Array::from_i64(vec![7; 50_000]))],
            )
            .unwrap()
        });
        assert!(ds.total_bytes * 10 < ds.uncompressed_bytes);
    }
}
