//! The recursive-descent parser.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! query    := SELECT items FROM table [WHERE expr] [GROUP BY exprs]
//!             [ORDER BY order_items] [LIMIT int] [';']
//! expr     := or
//! or       := and (OR and)*
//! and      := not (AND not)*
//! not      := NOT not | predicate
//! predicate:= additive ([NOT] BETWEEN additive AND additive
//!             | IS [NOT] NULL | cmp_op additive)?
//! additive := multiplicative ((+|-) multiplicative)*
//! multiplicative := unary ((*|/|%) unary)*
//! unary    := - unary | primary
//! primary  := literal | DATE str | INTERVAL str DAY | func(args|*)
//!             | ident | '(' expr ')'
//! ```

use crate::ast::{
    AstExpr, BinaryOp, OrderItem, Query, SelectItem, Statement, StatementKind, TableRef, UnaryOp,
};
use crate::lexer::{tokenize, Spanned, Token};
use crate::{ParseError, Result};

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

/// Parse a single SELECT statement.
pub fn parse(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_semi();
    if !p.at_end() {
        return Err(p.error_here("unexpected trailing tokens"));
    }
    Ok(q)
}

/// Parse a statement: `[EXPLAIN [ANALYZE]] SELECT …`.
pub fn parse_statement(input: &str) -> Result<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let kind = if p.eat_kw("explain") {
        if p.eat_kw("analyze") {
            StatementKind::ExplainAnalyze
        } else {
            StatementKind::Explain
        }
    } else {
        StatementKind::Query
    };
    let query = p.query()?;
    p.eat_semi();
    if !p.at_end() {
        return Err(p.error_here("unexpected trailing tokens"));
    }
    Ok(Statement { kind, query })
}

/// Parse a standalone expression (useful for tests and filter strings).
pub fn parse_expr(input: &str) -> Result<AstExpr> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    if !p.at_end() {
        return Err(p.error_here("unexpected trailing tokens"));
    }
    Ok(e)
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn offset_here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .or_else(|| self.tokens.last().map(|t| t.offset + 1))
            .unwrap_or(0)
    }

    fn error_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            offset: self.offset_here(),
        }
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume a keyword (lower-case) if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected keyword {}", kw.to_uppercase())))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {what}")))
        }
    }

    fn eat_semi(&mut self) {
        while self.eat(&Token::Semi) {}
    }

    fn peek_is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("select")?;
        let select = self.select_items()?;
        self.expect_kw("from")?;
        let from = self.table_ref()?;
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push(OrderItem { expr, ascending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.advance() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                _ => return Err(self.error_here("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_kw("as") {
                match self.advance() {
                    Some(Token::Ident(name)) => Some(name),
                    _ => return Err(self.error_here("expected alias after AS")),
                }
            } else if let Some(Token::Ident(name)) = self.peek() {
                // Bare alias, unless the ident is a clause keyword.
                const CLAUSES: [&str; 6] = ["from", "where", "group", "order", "limit", "as"];
                if CLAUSES.contains(&name.as_str()) {
                    None
                } else {
                    let name = name.clone();
                    self.pos += 1;
                    Some(name)
                }
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        if items.is_empty() {
            return Err(self.error_here("empty select list"));
        }
        Ok(items)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let first = match self.advance() {
            Some(Token::Ident(name)) => name,
            _ => return Err(self.error_here("expected table name")),
        };
        if self.eat(&Token::Dot) {
            let second = match self.advance() {
                Some(Token::Ident(name)) => name,
                _ => return Err(self.error_here("expected table name after '.'")),
            };
            Ok(TableRef {
                qualifier: Some(first),
                name: second,
            })
        } else {
            Ok(TableRef {
                qualifier: None,
                name: first,
            })
        }
    }

    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = AstExpr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            Ok(AstExpr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<AstExpr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN a AND b — note the AND here binds to BETWEEN.
        let negated = if self.peek_is_kw("not") {
            // Only consume NOT if followed by BETWEEN.
            if matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.token),
                Some(Token::Ident(s)) if s == "between"
            ) {
                self.pos += 1;
                true
            } else {
                false
            }
        } else {
            false
        };
        if self.eat_kw("between") {
            let lo = self.additive()?;
            self.expect_kw("and")?;
            let hi = self.additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if negated {
            return Err(self.error_here("expected BETWEEN after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::NotEq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::LtEq) => Some(BinaryOp::LtEq),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<AstExpr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            return Ok(AstExpr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.advance() {
            Some(Token::Int(v)) => Ok(AstExpr::Int(v)),
            Some(Token::Float(v)) => Ok(AstExpr::Float(v)),
            Some(Token::Str(s)) => Ok(AstExpr::Str(s)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => match name.as_str() {
                "null" => Ok(AstExpr::Null),
                "true" => Ok(AstExpr::Bool(true)),
                "false" => Ok(AstExpr::Bool(false)),
                "date" => {
                    // DATE 'YYYY-MM-DD'
                    match self.advance() {
                        Some(Token::Str(s)) => {
                            let days = parse_date(&s).ok_or_else(|| {
                                self.error_here(format!("invalid date literal '{s}'"))
                            })?;
                            Ok(AstExpr::Date(days))
                        }
                        _ => Err(self.error_here("expected string after DATE")),
                    }
                }
                "interval" => {
                    // INTERVAL 'n' DAY
                    let n = match self.advance() {
                        Some(Token::Str(s)) => s
                            .trim()
                            .parse::<i64>()
                            .map_err(|e| self.error_here(format!("bad interval '{s}': {e}")))?,
                        _ => return Err(self.error_here("expected string after INTERVAL")),
                    };
                    if !(self.eat_kw("day") || self.eat_kw("days")) {
                        return Err(self.error_here("only DAY intervals are supported"));
                    }
                    Ok(AstExpr::IntervalDays(n))
                }
                _ => {
                    if self.eat(&Token::LParen) {
                        // Function call.
                        if self.eat(&Token::Star) {
                            self.expect(&Token::RParen, "')'")?;
                            return Ok(AstExpr::Func {
                                name,
                                args: vec![],
                                star: true,
                            });
                        }
                        let mut args = Vec::new();
                        if !self.eat(&Token::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&Token::Comma) {
                                    break;
                                }
                            }
                            self.expect(&Token::RParen, "')'")?;
                        }
                        Ok(AstExpr::Func {
                            name,
                            args,
                            star: false,
                        })
                    } else {
                        Ok(AstExpr::Ident(name))
                    }
                }
            },
            _ => Err(self.error_here("expected expression")),
        }
    }
}

/// Parse `YYYY-MM-DD` into days since epoch.
fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(days_from_civil(y, m, d))
}

fn days_from_civil(year: i32, month: u32, day: u32) -> i32 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let mp = ((month + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146097 + doe - 719468) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse("SELECT a, b FROM t").unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from.name, "t");
        assert!(q.where_clause.is_none());
        assert!(q.group_by.is_empty());
        assert!(q.limit.is_none());
    }

    #[test]
    fn aliases() {
        let q = parse("SELECT min(x) AS lo, max(x) hi FROM t").unwrap();
        assert_eq!(q.select[0].alias.as_deref(), Some("lo"));
        assert_eq!(q.select[1].alias.as_deref(), Some("hi"));
    }

    #[test]
    fn qualified_table() {
        let q = parse("SELECT a FROM lake.points").unwrap();
        assert_eq!(q.from.qualifier.as_deref(), Some("lake"));
        assert_eq!(q.from.name, "points");
    }

    #[test]
    fn precedence_arith_over_cmp_over_and() {
        let q = parse("SELECT a FROM t WHERE a + 1 * 2 > 3 AND b < 4").unwrap();
        let w = q.where_clause.unwrap();
        assert_eq!(w.to_string(), "(((a + (1 * 2)) > 3) AND (b < 4))");
    }

    #[test]
    fn between_binds_and_correctly() {
        let q = parse("SELECT a FROM t WHERE x BETWEEN 0.8 AND 3.2 AND y > 1").unwrap();
        let w = q.where_clause.unwrap();
        assert_eq!(w.to_string(), "((x BETWEEN 0.8 AND 3.2) AND (y > 1))");
    }

    #[test]
    fn not_between() {
        let e = parse_expr("x NOT BETWEEN 1 AND 2").unwrap();
        assert!(matches!(e, AstExpr::Between { negated: true, .. }));
        let e = parse_expr("NOT x BETWEEN 1 AND 2").unwrap();
        assert!(matches!(
            e,
            AstExpr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn date_and_interval() {
        let e = parse_expr("DATE '1998-12-01' - INTERVAL '90' DAY").unwrap();
        match e {
            AstExpr::Binary {
                op: BinaryOp::Sub,
                left,
                right,
            } => {
                assert_eq!(*left, AstExpr::Date(10561));
                assert_eq!(*right, AstExpr::IntervalDays(90));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_expr("DATE '1998-13-01'").is_err());
        assert!(parse_expr("INTERVAL '3' MONTH").is_err());
    }

    #[test]
    fn functions_and_star() {
        let e = parse_expr("count(*)").unwrap();
        assert!(matches!(e, AstExpr::Func { star: true, .. }));
        let e = parse_expr("sum(extendedprice * (1 - discount))").unwrap();
        assert_eq!(e.to_string(), "sum((extendedprice * (1 - discount)))");
    }

    #[test]
    fn is_null_forms() {
        assert!(matches!(
            parse_expr("x IS NULL").unwrap(),
            AstExpr::IsNull { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("x IS NOT NULL").unwrap(),
            AstExpr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn full_clause_set() {
        let q = parse(
            "SELECT tag, avg(v) AS m FROM points WHERE v > 0.1 \
             GROUP BY tag ORDER BY m DESC, tag ASC LIMIT 5;",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].ascending);
        assert!(q.order_by[1].ascending);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn paper_laghos_query_parses() {
        let q = parse(
            "SELECT min(vertex_id) AS vid, min(x), min(y), min(z), avg(e) AS e \
             FROM laghos \
             WHERE x BETWEEN 0.8 AND 3.2 AND y BETWEEN 0.8 AND 3.2 AND z BETWEEN 0.8 AND 3.2 \
             GROUP BY vertex_id ORDER BY e LIMIT 100",
        )
        .unwrap();
        assert_eq!(q.select.len(), 5);
        assert_eq!(q.limit, Some(100));
    }

    #[test]
    fn paper_deepwater_query_parses() {
        let q = parse(
            "SELECT MAX((rowid % (500*500))/500), timestep FROM deepwater \
             WHERE v02 > 0.1 GROUP BY timestep",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.group_by.len(), 1);
    }

    #[test]
    fn paper_tpch_q1_parses() {
        let q = parse(
            "SELECT returnflag, linestatus, SUM(quantity), SUM(extendedprice), \
             SUM(extendedprice * (1 - discount)), \
             SUM(extendedprice * (1 - discount) * (1 + tax)), AVG(quantity), \
             AVG(extendedprice), AVG(discount), COUNT(*) FROM lineitem \
             WHERE shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY \
             GROUP BY returnflag, linestatus ORDER BY returnflag, linestatus",
        )
        .unwrap();
        assert_eq!(q.select.len(), 10);
        assert_eq!(q.group_by.len(), 2);
        assert_eq!(q.order_by.len(), 2);
    }

    #[test]
    fn errors_are_positioned() {
        let e = parse("SELECT FROM t").unwrap_err();
        assert!(e.offset > 0);
        assert!(parse("SELECT a").is_err(), "missing FROM");
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
        assert!(
            parse("SELECT a FROM t GROUP a").is_err(),
            "GROUP without BY"
        );
        assert!(parse("SELECT a FROM t extra junk +").is_err());
    }

    #[test]
    fn statement_prefixes() {
        use crate::ast::StatementKind;
        let s = parse_statement("SELECT a FROM t").unwrap();
        assert_eq!(s.kind, StatementKind::Query);
        let s = parse_statement("EXPLAIN SELECT a FROM t;").unwrap();
        assert_eq!(s.kind, StatementKind::Explain);
        let s = parse_statement("explain analyze SELECT a FROM t WHERE a > 1").unwrap();
        assert_eq!(s.kind, StatementKind::ExplainAnalyze);
        assert_eq!(s.query.from.name, "t");
        assert!(s.query.where_clause.is_some());
        assert!(parse_statement("EXPLAIN ANALYZE").is_err());
        assert!(parse_statement("ANALYZE SELECT a FROM t").is_err());
    }

    #[test]
    fn unary_operators() {
        assert_eq!(parse_expr("-x").unwrap().to_string(), "(-x)");
        assert_eq!(parse_expr("- -3").unwrap().to_string(), "(-(-3))");
        assert_eq!(parse_expr("+x").unwrap().to_string(), "x");
        assert_eq!(
            parse_expr("NOT a > 1").unwrap().to_string(),
            "(NOT (a > 1))"
        );
    }
}
