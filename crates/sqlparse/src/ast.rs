//! The abstract syntax tree produced by the parser.

use std::fmt;

/// Binary operators (precedence is the parser's concern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `OR`
    Or,
    /// `AND`
    And,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl BinaryOp {
    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// An AST expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Column reference (already lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `DATE 'YYYY-MM-DD'` literal, as days since epoch.
    Date(i32),
    /// `INTERVAL 'n' DAY`, as a day count.
    IntervalDays(i64),
    /// `NULL` literal.
    Null,
    /// `TRUE`/`FALSE`.
    Bool(bool),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<AstExpr>,
    },
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// Lower bound.
        lo: Box<AstExpr>,
        /// Upper bound.
        hi: Box<AstExpr>,
        /// NOT BETWEEN.
        negated: bool,
    },
    /// Function call, e.g. `min(x)`; `count(*)` sets `star`.
    Func {
        /// Lower-cased function name.
        name: String,
        /// Arguments.
        args: Vec<AstExpr>,
        /// True for `f(*)`.
        star: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// IS NOT NULL.
        negated: bool,
    },
}

impl fmt::Display for AstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstExpr::Ident(s) => write!(f, "{s}"),
            AstExpr::Int(v) => write!(f, "{v}"),
            AstExpr::Float(v) => write!(f, "{v}"),
            AstExpr::Str(s) => write!(f, "'{s}'"),
            AstExpr::Date(d) => {
                let (y, m, dd) = columnar_date(*d);
                write!(f, "DATE '{y:04}-{m:02}-{dd:02}'")
            }
            AstExpr::IntervalDays(n) => write!(f, "INTERVAL '{n}' DAY"),
            AstExpr::Null => write!(f, "NULL"),
            AstExpr::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            AstExpr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.sql())
            }
            AstExpr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "(-{expr})"),
                UnaryOp::Not => write!(f, "(NOT {expr})"),
            },
            AstExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {lo} AND {hi})",
                if *negated { "NOT " } else { "" }
            ),
            AstExpr::Func { name, args, star } => {
                if *star {
                    write!(f, "{name}(*)")
                } else {
                    let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                    write!(f, "{name}({})", parts.join(", "))
                }
            }
            AstExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
        }
    }
}

// Tiny local copy of civil_from_days to avoid a columnar dependency just
// for Display (the engine uses columnar's canonical version).
fn columnar_date(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y } as i32, m, d)
}

/// One `SELECT` list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: AstExpr,
    /// Optional `AS alias` (lower-cased).
    pub alias: Option<String>,
}

/// One `ORDER BY` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Key expression.
    pub expr: AstExpr,
    /// `ASC` (default) vs `DESC`.
    pub ascending: bool,
}

/// The table in `FROM` (optionally schema-qualified).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Optional schema/catalog qualifier.
    pub qualifier: Option<String>,
    /// Table name.
    pub name: String,
}

/// How a parsed statement asks to be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementKind {
    /// Plain query: run it, return rows.
    Query,
    /// `EXPLAIN`: show the plan, don't run it.
    Explain,
    /// `EXPLAIN ANALYZE`: run it and render the annotated span tree.
    ExplainAnalyze,
}

/// A full statement: an optional `EXPLAIN [ANALYZE]` prefix over a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// Execution mode.
    pub kind: StatementKind,
    /// The underlying query.
    pub query: Query,
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Select list.
    pub select: Vec<SelectItem>,
    /// Source table.
    pub from: TableRef,
    /// `WHERE` predicate.
    pub where_clause: Option<AstExpr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<AstExpr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_shapes() {
        let e = AstExpr::Between {
            expr: Box::new(AstExpr::Ident("x".into())),
            lo: Box::new(AstExpr::Float(0.8)),
            hi: Box::new(AstExpr::Float(3.2)),
            negated: false,
        };
        assert_eq!(e.to_string(), "(x BETWEEN 0.8 AND 3.2)");
        let e = AstExpr::Func {
            name: "count".into(),
            args: vec![],
            star: true,
        };
        assert_eq!(e.to_string(), "count(*)");
        let e = AstExpr::Date(10561);
        assert_eq!(e.to_string(), "DATE '1998-12-01'");
    }
}
