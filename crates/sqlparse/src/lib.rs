//! `sqlparse` — a SQL lexer and recursive-descent parser.
//!
//! Covers the dialect the paper's workloads exercise (Table 2): single-table
//! `SELECT` with expressions, aliases, `WHERE` (comparisons, `BETWEEN`,
//! boolean logic, arithmetic, `DATE`/`INTERVAL` literals), `GROUP BY`,
//! `ORDER BY … ASC|DESC`, and `LIMIT`. The output is a typed AST consumed
//! by the engine's analyzer (the first step in Presto's coordinator
//! pipeline, Figure 3 of the paper).
//!
//! # Example
//!
//! ```
//! let q = sqlparse::parse(
//!     "SELECT max(v) AS m, tag FROM points WHERE x BETWEEN 0.8 AND 3.2 \
//!      GROUP BY tag ORDER BY m DESC LIMIT 10",
//! ).unwrap();
//! assert_eq!(q.from.name, "points");
//! assert_eq!(q.select.len(), 2);
//! assert_eq!(q.limit, Some(10));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{AstExpr, BinaryOp, OrderItem, Query, SelectItem, Statement, StatementKind, UnaryOp};
pub use parser::{parse, parse_statement};

use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, ParseError>;
