//! The SQL tokenizer.

use crate::{ParseError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (lower-cased; SQL identifiers are
    /// case-insensitive in this dialect).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `.` (qualified names)
    Dot,
    /// `;`
    Semi,
}

/// A token plus its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token start.
    pub offset: usize,
}

fn err(message: impl Into<String>, offset: usize) -> ParseError {
    ParseError {
        message: message.into(),
        offset,
    }
}

/// Tokenize `input`.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    offset: i,
                });
                i += 1;
            }
            b')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    offset: i,
                });
                i += 1;
            }
            b',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    offset: i,
                });
                i += 1;
            }
            b'*' => {
                out.push(Spanned {
                    token: Token::Star,
                    offset: i,
                });
                i += 1;
            }
            b'+' => {
                out.push(Spanned {
                    token: Token::Plus,
                    offset: i,
                });
                i += 1;
            }
            b'-' => {
                out.push(Spanned {
                    token: Token::Minus,
                    offset: i,
                });
                i += 1;
            }
            b'/' => {
                out.push(Spanned {
                    token: Token::Slash,
                    offset: i,
                });
                i += 1;
            }
            b'%' => {
                out.push(Spanned {
                    token: Token::Percent,
                    offset: i,
                });
                i += 1;
            }
            b'.' => {
                out.push(Spanned {
                    token: Token::Dot,
                    offset: i,
                });
                i += 1;
            }
            b';' => {
                out.push(Spanned {
                    token: Token::Semi,
                    offset: i,
                });
                i += 1;
            }
            b'=' => {
                out.push(Spanned {
                    token: Token::Eq,
                    offset: i,
                });
                i += 1;
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned {
                        token: Token::NotEq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(err("unexpected '!'", i));
                }
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned {
                        token: Token::LtEq,
                        offset: i,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Spanned {
                        token: Token::NotEq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned {
                        token: Token::GtEq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Gt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err("unterminated string literal", start));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    // Multi-byte UTF-8 passes through unchanged.
                    s.push(input[i..].chars().next().expect("in-bounds char"));
                    i += input[i..].chars().next().expect("char").len_utf8();
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                let token = if is_float {
                    Token::Float(
                        text.parse::<f64>()
                            .map_err(|e| err(format!("bad float '{text}': {e}"), start))?,
                    )
                } else {
                    Token::Int(
                        text.parse::<i64>()
                            .map_err(|e| err(format!("bad integer '{text}': {e}"), start))?,
                    )
                };
                out.push(Spanned {
                    token,
                    offset: start,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Ident(input[start..i].to_ascii_lowercase()),
                    offset: start,
                });
            }
            other => {
                return Err(err(format!("unexpected character '{}'", other as char), i));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("SELECT a, b FROM t"),
            vec![
                Token::Ident("select".into()),
                Token::Ident("a".into()),
                Token::Comma,
                Token::Ident("b".into()),
                Token::Ident("from".into()),
                Token::Ident("t".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Token::Int(42)]);
        assert_eq!(toks("0.8"), vec![Token::Float(0.8)]);
        assert_eq!(toks("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(toks("2.5e-2"), vec![Token::Float(0.025)]);
        // '5.' is Int then Dot (qualified-name friendly).
        assert_eq!(
            toks("5.x"),
            vec![Token::Int(5), Token::Dot, Token::Ident("x".into())]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("< <= > >= = <> !="),
            vec![
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Eq,
                Token::NotEq,
                Token::NotEq,
            ]
        );
        assert_eq!(
            toks("a+b-c*d/e%f"),
            vec![
                Token::Ident("a".into()),
                Token::Plus,
                Token::Ident("b".into()),
                Token::Minus,
                Token::Ident("c".into()),
                Token::Star,
                Token::Ident("d".into()),
                Token::Slash,
                Token::Ident("e".into()),
                Token::Percent,
                Token::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn strings() {
        assert_eq!(toks("'hello'"), vec![Token::Str("hello".into())]);
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into())]);
        assert_eq!(toks("'1998-12-01'"), vec![Token::Str("1998-12-01".into())]);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comments_and_whitespace() {
        assert_eq!(
            toks("a -- comment here\n b"),
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn error_has_offset() {
        let e = tokenize("a $ b").unwrap_err();
        assert_eq!(e.offset, 2);
    }

    #[test]
    fn keywords_are_lowercased() {
        assert_eq!(toks("SeLeCt"), vec![Token::Ident("select".into())]);
    }
}
