//! Property tests for the lint scanner's two foundations: the code view
//! (comment/string/char blanking) and the `#[cfg(test)]` line mask. The
//! token-level concurrency and panic lints are only as good as these
//! two, so they get adversarial generated input: raw strings with
//! braces and quotes, multi-line strings, nested block comments, and
//! nested `#[cfg(test)]` items.

use proptest::prelude::*;
use xtask::{code_view, test_line_mask};

/// One generated source fragment. `payload` is drawn from `[a-v]{1,6}`
/// so it can never spell the sentinel token `unwrap` (no `w`).
///
/// Returns the fragment text and whether it contains the sentinel in
/// *code* position (as opposed to inside a literal or comment).
fn fragment(kind: u8, payload: &str, extra: u8) -> (String, bool) {
    match kind {
        // Plain code, no sentinel.
        0 => (format!("let {payload} = {payload}2;"), false),
        // Code containing the sentinel: must survive the view.
        1 => (format!("let {payload} = q.unwrap();"), true),
        // Line comment: sentinel must be blanked.
        2 => (format!("// unwrap {payload}"), false),
        // Plain string literal with escapes.
        3 => (format!("let s = \"unwrap \\\"{payload}\\\" \\n\";"), false),
        // Multi-line string literal.
        4 => (format!("let s = \"unwrap\n {payload} unwrap\";"), false),
        // Raw string; with hashes the content may contain bare quotes.
        5 => {
            let hashes = "#".repeat(usize::from(extra % 3));
            let inner = if hashes.is_empty() {
                format!("unwrap {payload}")
            } else {
                format!("unwrap \"{payload}\" ")
            };
            (format!("let r = r{hashes}\"{inner}\"{hashes};"), false)
        }
        // Nested block comment.
        6 => (
            format!("/* unwrap {payload} /* nested unwrap */ tail */"),
            false,
        ),
        // Char literals (escaped and plain) next to a lifetime.
        _ => (
            format!("let c: &'static u8 = &b; let {payload} = '\\n';"),
            false,
        ),
    }
}

/// Newline byte positions, for comparing line structure exactly.
fn newline_positions(s: &str) -> Vec<usize> {
    s.bytes()
        .enumerate()
        .filter(|(_, b)| *b == b'\n')
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The view preserves line structure byte-for-byte, never invents
    /// the sentinel token, never loses it from code position, and is a
    /// fixed point of itself (a second pass has nothing left to blank).
    #[test]
    fn code_view_properties(
        spec in proptest::collection::vec((0u8..8, "[a-v]{1,6}", 0u8..4), 0..30)
    ) {
        let mut src = String::new();
        let mut sentinel_in_code = false;
        for (kind, payload, extra) in &spec {
            let (text, in_code) = fragment(*kind, payload, *extra);
            sentinel_in_code |= in_code;
            src.push_str(&text);
            src.push('\n');
        }
        let view = code_view(&src);
        prop_assert_eq!(newline_positions(&view), newline_positions(&src));
        prop_assert_eq!(view.contains("unwrap"), sentinel_in_code, "view:\n{}", view);
        let again = code_view(&view);
        prop_assert_eq!(&again, &view, "code_view is not idempotent");
    }

    /// The mask covers exactly the `#[cfg(test)]` item — from the
    /// attribute line through the matching closing brace — even when the
    /// body hides unbalanced braces in string/raw-string literals or
    /// contains nested blocks and nested `#[cfg(test)]` items.
    #[test]
    fn test_line_mask_properties(
        n_pre in 0usize..5,
        body in proptest::collection::vec((0u8..6, "[a-v]{1,6}"), 0..12),
        n_post in 0usize..5,
    ) {
        let mut src = String::new();
        for i in 0..n_pre {
            src.push_str(&format!("fn pre{i}() {{ let a = 1; }}\n"));
        }
        let attr_line = n_pre + 1;
        src.push_str("#[cfg(test)]\nmod tests {\n");
        for (kind, payload) in &body {
            let frag = match kind {
                0 => format!("    let {payload} = 1;\n"),
                1 => format!("    {{ let {payload} = 2; }}\n"),
                2 => format!("    {{\n    let {payload} = 3;\n    }}\n"),
                3 => "    let s = \"}}}{{{\";\n".to_string(),
                4 => "    let s = r#\"}\n}{\"#;\n".to_string(),
                _ => format!("    #[cfg(test)]\n    fn {payload}_t() {{ let q = 4; }}\n"),
            };
            src.push_str(&frag);
        }
        src.push_str("}\n");
        let close_line = src.lines().count();
        for i in 0..n_post {
            src.push_str(&format!("fn post{i}() {{}}\n"));
        }
        let n_lines = src.lines().count();

        let view = code_view(&src);
        let mask = test_line_mask(&view);
        prop_assert_eq!(mask.len(), n_lines + 2);
        for (line, &masked) in mask.iter().enumerate().take(n_lines + 1).skip(1) {
            let expected = line >= attr_line && line <= close_line;
            prop_assert_eq!(
                masked, expected,
                "line {} (attr {}, close {}):\n{}",
                line, attr_line, close_line, src
            );
        }
    }

    /// A file with no `#[cfg(test)]` has an all-false mask.
    #[test]
    fn mask_is_empty_without_cfg_test(
        body in proptest::collection::vec((0u8..8, "[a-v]{1,6}", 0u8..4), 0..20)
    ) {
        let mut src = String::new();
        for (kind, payload, extra) in &body {
            src.push_str(&fragment(*kind, payload, *extra).0);
            src.push('\n');
        }
        let view = code_view(&src);
        let mask = test_line_mask(&view);
        prop_assert!(mask.iter().all(|m| !m), "src:\n{}", src);
    }
}
