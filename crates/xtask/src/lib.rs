//! Token-level repo lints, run as `cargo run -p xtask -- lint`.
//!
//! Three rules, all enforced over a *code view* of each source file —
//! the original text with comments, string literals, and char literals
//! blanked out (newlines preserved) so tokens inside them never match:
//!
//! 1. **`unsafe` needs `// SAFETY:`** — every `unsafe` token must have a
//!    `SAFETY:` comment on its own line or within the three lines above.
//! 2. **No `unwrap`/`expect` on the trust boundary** — non-test code in
//!    `crates/ocs`, `crates/substrait-ir`, `crates/core`, and
//!    `crates/obs` (which decodes span payloads off the wire) must not
//!    call `.unwrap()` or `.expect(`; a storage node must return an
//!    error frame, never abort. Survivors are listed in
//!    `crates/xtask/lint-allow.txt` with a justification.
//! 3. **No dead error variants** — every variant of a `pub enum *Error`
//!    must be constructed somewhere in the workspace; an unconstructable
//!    variant is an error path that cannot happen and should be deleted.
//!
//! The scanner is deliberately not a Rust parser (no external deps); the
//! heuristics are documented inline where they matter.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose non-test code falls under rule 2 (the Substrait trust
/// boundary: engine-side translation, the IR itself, and the OCS side),
/// plus the streaming-boundary modules that decode untrusted wire frames
/// or schedule from untrusted durations.
const BANNED_PANIC_CRATES: &[&str] = &[
    "crates/cache/",
    "crates/ocs/",
    "crates/substrait-ir/",
    "crates/core/",
    "crates/obs/",
    "crates/columnar/src/ipc.rs",
    "crates/netsim/src/sched.rs",
    "crates/netsim/src/stats.rs",
];

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 3;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (`L1`, `L2`, `L3`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One allowlist entry: `path-suffix: line-substring` (see
/// `lint-allow.txt`). A rule-2 violation is suppressed when the file path
/// ends with `path` and the offending source line contains `needle`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Path suffix the entry applies to.
    pub path: String,
    /// Substring of the allowed source line.
    pub needle: String,
}

/// Parse `lint-allow.txt`: one `path: substring` entry per line, `#`
/// comments and blank lines ignored.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (path, needle) = l.split_once(':')?;
            Some(AllowEntry {
                path: path.trim().to_string(),
                needle: needle.trim().to_string(),
            })
        })
        .collect()
}

/// Blank out comments, string literals, and char literals, preserving
/// line structure, so token scans never match inside them. Handles line
/// and nested block comments, escapes, raw strings (`r"…"`,
/// `r#"…"#`, and the `b`-prefixed forms), and distinguishes char
/// literals from lifetimes.
pub fn code_view(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };
    while i < b.len() {
        let c = b[i];
        // Raw (and raw-byte) string literals: r"…", r#"…"#, br"…", …
        if (c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r')))
            && (i == 0 || !is_ident(b[i - 1]))
        {
            let mut j = i + if c == b'b' { 2 } else { 1 };
            let mut hashes = 0;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&b'"') {
                // Enter the raw string; scan for `"` followed by `hashes` #s.
                out.resize(out.len() + (j + 1 - i), b' ');
                i = j + 1;
                'raw: while i < b.len() {
                    if b[i] == b'"'
                        && b[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == b'#')
                            .count()
                            == hashes
                    {
                        out.resize(out.len() + hashes + 1, b' ');
                        i += 1 + hashes;
                        break 'raw;
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        match c {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                out.extend([b' ', b' ']);
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend([b' ', b' ']);
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
            }
            b'\'' => {
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: blank through the closing quote.
                    out.push(b' ');
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        out.extend([b' ', b' '].iter().take(if b[i] == b'\\' { 2 } else { 1 }));
                        i += if b[i] == b'\\' { 2 } else { 1 };
                    }
                    if i < b.len() {
                        out.push(b' ');
                        i += 1;
                    }
                } else if b.get(i + 2) == Some(&b'\'') {
                    out.extend([b' ', b' ', b' ']);
                    i += 3;
                } else {
                    // Lifetime — plain code, keep it.
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    // The byte-for-byte blanking above preserves UTF-8 only for code we
    // copied verbatim; blanked regions are ASCII spaces, so this cannot
    // fail on valid input.
    String::from_utf8_lossy(&out).into_owned()
}

fn is_ident(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Per-line flag: is this line inside a `#[cfg(test)]`-gated item?
/// Found by brace-matching on the code view from each `#[cfg(test)]`
/// attribute to the end of the item it gates.
pub fn test_line_mask(view: &str) -> Vec<bool> {
    let n_lines = view.lines().count();
    let mut mask = vec![false; n_lines + 2];
    let bytes = view.as_bytes();
    let mut search = 0;
    while let Some(off) = view[search..].find("#[cfg(test)]") {
        let start = search + off;
        search = start + 1;
        // Find the gated item's opening brace, then match it.
        let Some(brace_off) = view[start..].find('{') else {
            break;
        };
        let mut depth = 0usize;
        let mut end = start + brace_off;
        for (k, &ch) in bytes.iter().enumerate().skip(start + brace_off) {
            match ch {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        let first = line_of(view, start);
        let last = line_of(view, end);
        for m in &mut mask[first..=last.min(n_lines)] {
            *m = true;
        }
    }
    mask
}

/// 1-based line number of byte offset `pos`.
fn line_of(text: &str, pos: usize) -> usize {
    text.as_bytes()[..pos]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// Rules 1 and 2 over one file. `path` is repo-relative with `/`
/// separators. Test code (files under a `tests/` directory, `benches/`,
/// `examples/`, and `#[cfg(test)]` items) is exempt from rule 2.
pub fn lint_source(path: &str, src: &str, allow: &[AllowEntry]) -> Vec<Violation> {
    let mut out = Vec::new();
    let view = code_view(src);
    let src_lines: Vec<&str> = src.lines().collect();
    let mask = test_line_mask(&view);
    let in_tests = path.contains("/tests/")
        || path.starts_with("tests/")
        || path.contains("/benches/")
        || path.starts_with("examples/");

    // Rule 1: every `unsafe` token needs a SAFETY comment nearby.
    let mut search = 0;
    while let Some(off) = view[search..].find("unsafe") {
        let pos = search + off;
        search = pos + 6;
        let before = if pos == 0 {
            b' '
        } else {
            view.as_bytes()[pos - 1]
        };
        let after = *view.as_bytes().get(pos + 6).unwrap_or(&b' ');
        if is_ident(before) || is_ident(after) {
            continue; // part of a longer identifier, e.g. `unsafe_op_…`
        }
        let line = line_of(&view, pos);
        let lo = line.saturating_sub(SAFETY_WINDOW + 1);
        let documented = src_lines[lo..line].iter().any(|l| l.contains("SAFETY:"));
        if !documented {
            out.push(Violation {
                file: path.to_string(),
                line,
                rule: "L1",
                message: "`unsafe` without a `// SAFETY:` comment in the 3 lines above".into(),
            });
        }
    }

    // Rule 2: no unwrap/expect in non-test trust-boundary code.
    if BANNED_PANIC_CRATES.iter().any(|c| path.starts_with(c)) && !in_tests {
        for (idx, vline) in view.lines().enumerate() {
            let line_no = idx + 1;
            if mask.get(line_no).copied().unwrap_or(false) {
                continue;
            }
            for needle in [".unwrap()", ".expect("] {
                if !vline.contains(needle) {
                    continue;
                }
                let original = src_lines.get(idx).copied().unwrap_or("");
                let allowed = allow
                    .iter()
                    .any(|a| path.ends_with(&a.path) && original.contains(&a.needle));
                if !allowed {
                    out.push(Violation {
                        file: path.to_string(),
                        line: line_no,
                        rule: "L2",
                        message: format!(
                            "`{needle}` in trust-boundary code (return an error or \
                             add a justified entry to crates/xtask/lint-allow.txt)"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Rule 3 over the whole file set: every variant of every `pub enum
/// *Error` must be constructed somewhere. An occurrence of
/// `Enum::Variant` (or `Self::Variant` — imprecise but cheap) counts as
/// a construction unless the rest of its line contains `=>`, which marks
/// it as a match-arm pattern.
pub fn check_error_enums(files: &[(String, String)]) -> Vec<Violation> {
    let views: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.clone(), code_view(s)))
        .collect();

    let mut out = Vec::new();
    for (path, view) in &views {
        let mut search = 0;
        while let Some(off) = view[search..].find("pub enum ") {
            let start = search + off;
            search = start + 1;
            let rest = &view[start + "pub enum ".len()..];
            let name: String = rest.chars().take_while(|c| is_ident(*c as u8)).collect();
            if !name.ends_with("Error") {
                continue;
            }
            let decl_line = line_of(view, start);
            for variant in enum_variants(rest) {
                if !variant_constructed(&views, &name, &variant) {
                    out.push(Violation {
                        file: path.clone(),
                        line: decl_line,
                        rule: "L3",
                        message: format!(
                            "error variant `{name}::{variant}` is never constructed \
                             (dead error path — delete it or use it)"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Variant names of the enum whose body starts in `rest` (text after
/// `pub enum `): identifiers at brace depth 1 that start an item chunk.
fn enum_variants(rest: &str) -> Vec<String> {
    let Some(body_start) = rest.find('{') else {
        return Vec::new();
    };
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    let mut variants = Vec::new();
    let mut at_item_start = true;
    let mut i = body_start;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'{' | b'(' | b'<' | b'[' => {
                if c == b'{' {
                    depth += 1;
                    if depth == 1 {
                        at_item_start = true;
                        i += 1;
                        continue;
                    }
                }
                // Payload of a variant: skip to the matching closer so
                // field idents are not mistaken for variants.
                if depth == 1 {
                    let open = c;
                    let close = match c {
                        b'(' => b')',
                        b'<' => b'>',
                        b'[' => b']',
                        _ => b'}',
                    };
                    let mut d = 1usize;
                    i += 1;
                    while i < bytes.len() && d > 0 {
                        if bytes[i] == open {
                            d += 1;
                        } else if bytes[i] == close {
                            d -= 1;
                        }
                        i += 1;
                    }
                    continue;
                }
                i += 1;
            }
            b'}' => {
                if depth == 1 {
                    break;
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b',' => {
                if depth == 1 {
                    at_item_start = true;
                }
                i += 1;
            }
            // Attribute on a variant: skip the [...] group.
            b'#' if bytes.get(i + 1) == Some(&b'[') => {
                let mut d = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'[' {
                        d += 1;
                    } else if bytes[i] == b']' {
                        d -= 1;
                        if d == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
            _ if depth == 1 && at_item_start && is_ident(c) && c.is_ascii_uppercase() => {
                let s = i;
                while i < bytes.len() && is_ident(bytes[i]) {
                    i += 1;
                }
                variants.push(rest[s..i].to_string());
                at_item_start = false;
            }
            _ => {
                i += 1;
            }
        }
    }
    variants
}

fn variant_constructed(views: &[(String, String)], enum_name: &str, variant: &str) -> bool {
    let qualified = format!("{enum_name}::{variant}");
    let selfed = format!("Self::{variant}");
    for (_, view) in views {
        for line in view.lines() {
            for pat in [&qualified, &selfed] {
                let mut from = 0;
                while let Some(off) = line[from..].find(pat.as_str()) {
                    let pos = from + off;
                    from = pos + 1;
                    let before = if pos == 0 {
                        b' '
                    } else {
                        line.as_bytes()[pos - 1]
                    };
                    let after = *line.as_bytes().get(pos + pat.len()).unwrap_or(&b' ');
                    if is_ident(before) || is_ident(after) || before == b':' {
                        continue; // part of a longer path or identifier
                    }
                    // `X::V(…) => …` is a match pattern, not a construction.
                    if !line[pos + pat.len()..].contains("=>") {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Collect `.rs` files under the repo root (crates/, tests/, examples/),
/// skipping `target/` and the vendored `third_party/` crates, returning
/// `(repo-relative path, contents)` pairs.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files).map_err(|e| format!("walking {}: {e}", dir.display()))?;
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&f).map_err(|e| format!("reading {}: {e}", f.display()))?;
        out.push((rel, text));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        if path.is_dir() {
            if matches!(name.as_deref(), Some("target") | Some(".git")) {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run every lint over the workspace at `root`. Returns all violations.
pub fn run(root: &Path) -> Result<Vec<Violation>, String> {
    let allow_text = fs::read_to_string(root.join("crates/xtask/lint-allow.txt"))
        .map_err(|e| format!("reading lint-allow.txt: {e}"))?;
    let allow = parse_allowlist(&allow_text);
    let files = collect_sources(root)?;
    let mut violations = Vec::new();
    for (path, src) in &files {
        violations.extend(lint_source(path, src, &allow));
    }
    violations.extend(check_error_enums(&files));
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask is two levels below the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_view_blanks_strings_and_comments() {
        let src = "let a = \"x.unwrap()\"; // .unwrap()\nlet b = 'c'; /* unsafe */ let l: &'static str = r#\".expect(\"#;\n";
        let v = code_view(src);
        assert!(!v.contains("unwrap"), "{v}");
        assert!(!v.contains("unsafe"), "{v}");
        assert!(!v.contains(".expect("), "{v}");
        assert!(v.contains("'static"), "lifetime survives: {v}");
        assert_eq!(v.lines().count(), src.lines().count());
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = lint_source("crates/columnar/src/x.rs", src, &[]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L1");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let src =
            "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        assert!(lint_source("crates/columnar/src/x.rs", src, &[]).is_empty());
    }

    #[test]
    fn unwrap_in_trust_boundary_is_flagged() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let v = lint_source("crates/ocs/src/x.rs", src, &[]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L2");
        // Same code outside the banned crates is fine.
        assert!(lint_source("crates/engine/src/x.rs", src, &[]).is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_module_passes() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
        assert!(lint_source("crates/ocs/src/x.rs", src, &[]).is_empty());
    }

    #[test]
    fn allowlist_suppresses_expect() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.expect(\"invariant: present\")\n}\n";
        let allow = parse_allowlist("# comment\nsrc/x.rs: invariant: present\n");
        assert!(lint_source("crates/ocs/src/x.rs", src, &allow).is_empty());
        // The needle must actually match.
        let other = parse_allowlist("src/x.rs: some other line\n");
        assert_eq!(lint_source("crates/ocs/src/x.rs", src, &other).len(), 1);
    }

    #[test]
    fn dead_error_variant_is_flagged() {
        let files = vec![
            (
                "crates/a/src/lib.rs".to_string(),
                "#[derive(Debug)]\npub enum AError {\n    Used(String),\n    Dead(u32),\n}\n"
                    .to_string(),
            ),
            (
                "crates/a/src/other.rs".to_string(),
                "fn g() -> AError {\n    AError::Used(\"x\".into())\n}\nfn h(e: &AError) -> bool {\n    matches!(e, AError::Dead(_) if false)\n}\n"
                    .to_string(),
            ),
        ];
        // `Dead` appears only where the line has no `=>`… the matches!
        // occurrence counts, so seed a stricter case: a pattern-only use.
        let v = check_error_enums(&files);
        assert!(
            v.is_empty(),
            "matches! occurrence counts as liveness: {v:?}"
        );

        let files2 = vec![(
            "crates/a/src/lib.rs".to_string(),
            "pub enum BError {\n    Used,\n    Dead,\n}\nfn f(e: BError) -> u8 {\n    match e {\n        BError::Used => 1,\n        BError::Dead => 2,\n    }\n}\nfn mk() -> BError {\n    BError::Used\n}\n"
                .to_string(),
        )];
        let v2 = check_error_enums(&files2);
        assert_eq!(v2.len(), 1, "{v2:?}");
        assert_eq!(v2[0].rule, "L3");
        assert!(v2[0].message.contains("BError::Dead"), "{}", v2[0].message);
    }

    #[test]
    fn enum_variant_parsing_handles_payloads_and_attrs() {
        let rest = "XError {\n    #[allow(dead_code)]\n    Io(std::io::Error),\n    Parse { line: usize, msg: String },\n    Eof,\n}";
        assert_eq!(enum_variants(rest), vec!["Io", "Parse", "Eof"]);
    }

    #[test]
    fn workspace_is_clean() {
        let violations = run(&workspace_root()).expect("lint run");
        assert!(
            violations.is_empty(),
            "repo lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
