//! Token-level repo lints, run as `cargo run -p xtask -- lint`.
//!
//! Four general rules, all enforced over a *code view* of each source
//! file — the original text with comments, string literals, and char
//! literals blanked out (newlines preserved) so tokens inside them never
//! match:
//!
//! 1. **`unsafe` needs `// SAFETY:`** (`L1`) — every `unsafe` token must
//!    have a `SAFETY:` comment on its own line or within the three lines
//!    above.
//! 2. **No `unwrap`/`expect` on the trust boundary** (`L2`) — non-test
//!    code in `crates/ocs`, `crates/substrait-ir`, `crates/core`, and
//!    `crates/obs` (which decodes span payloads off the wire) must not
//!    call `.unwrap()` or `.expect(`; a storage node must return an
//!    error frame, never abort. Survivors are listed in
//!    `crates/xtask/lint-allow.txt` with a justification.
//! 3. **No dead error variants** (`L3`) — every variant of a `pub enum
//!    *Error` must be constructed somewhere in the workspace; an
//!    unconstructable variant is an error path that cannot happen and
//!    should be deleted.
//! 4. **No stale allowlist entries** (`L4`) — every `lint-allow.txt`
//!    entry must suppress at least one would-be violation; an unused
//!    entry means the excused code is gone and the entry must go too.
//!
//! The [`conc`] module adds the concurrency audit (`C100`–`C400`): a
//! lock inventory checked against the `LOCK_ORDER.md` hierarchy, a
//! static nested-acquisition scan, the `Ordering::Relaxed`/`RELAXED:`
//! justification rule, and a guard-across-yield-point check. See the
//! module docs for the individual codes.
//!
//! The scanner is deliberately not a Rust parser (no external deps); the
//! heuristics are documented inline where they matter.

pub mod conc;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose non-test code falls under rule 2 (the Substrait trust
/// boundary: engine-side translation, the IR itself, and the OCS side),
/// plus the streaming-boundary modules that decode untrusted wire frames
/// or schedule from untrusted durations.
const BANNED_PANIC_CRATES: &[&str] = &[
    "crates/cache/",
    "crates/ocs/",
    "crates/substrait-ir/",
    "crates/core/",
    "crates/obs/",
    "crates/columnar/src/ipc.rs",
    "crates/netsim/src/sched.rs",
    "crates/netsim/src/stats.rs",
];

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 3;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (`L1`, `L2`, `L3`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One allowlist entry: `[RULE] path-suffix: line-substring` (see
/// `lint-allow.txt`). A violation is suppressed when the entry's rule
/// matches (a bare entry is shorthand for `L2`), the file path ends with
/// `path`, and the offending source line contains `needle`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule code the entry applies to (`None` = bare entry = `L2`).
    pub rule: Option<String>,
    /// Path suffix the entry applies to.
    pub path: String,
    /// Substring of the allowed source line.
    pub needle: String,
    /// 1-based line in `lint-allow.txt` (for `L4` reporting).
    pub line: usize,
}

/// Is `tok` a rule code like `L2` or `C300` — uppercase letters then
/// digits?
fn is_rule_token(tok: &str) -> bool {
    let letters = tok.chars().take_while(|c| c.is_ascii_uppercase()).count();
    letters >= 1 && letters < tok.len() && tok.chars().skip(letters).all(|c| c.is_ascii_digit())
}

/// Parse `lint-allow.txt`: one `path: substring` entry per line, with an
/// optional leading rule code (`C300 path: substring`); `#` comments and
/// blank lines ignored.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .enumerate()
        .map(|(idx, l)| (idx + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|(line, l)| {
            let (rule, rest) = match l.split_once(' ') {
                Some((tok, rest)) if is_rule_token(tok) => {
                    (Some(tok.to_string()), rest.trim_start())
                }
                _ => (None, l),
            };
            let (path, needle) = rest.split_once(':')?;
            Some(AllowEntry {
                rule,
                path: path.trim().to_string(),
                needle: needle.trim().to_string(),
                line,
            })
        })
        .collect()
}

/// Blank out comments, string literals, and char literals, preserving
/// line structure, so token scans never match inside them. Handles line
/// and nested block comments, escapes, raw strings (`r"…"`,
/// `r#"…"#`, and the `b`-prefixed forms), and distinguishes char
/// literals from lifetimes.
pub fn code_view(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };
    while i < b.len() {
        let c = b[i];
        // Raw (and raw-byte) string literals: r"…", r#"…"#, br"…", …
        if (c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r')))
            && (i == 0 || !is_ident(b[i - 1]))
        {
            let mut j = i + if c == b'b' { 2 } else { 1 };
            let mut hashes = 0;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&b'"') {
                // Enter the raw string; scan for `"` followed by `hashes` #s.
                out.resize(out.len() + (j + 1 - i), b' ');
                i = j + 1;
                'raw: while i < b.len() {
                    if b[i] == b'"'
                        && b[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == b'#')
                            .count()
                            == hashes
                    {
                        out.resize(out.len() + hashes + 1, b' ');
                        i += 1 + hashes;
                        break 'raw;
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        match c {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                out.extend([b' ', b' ']);
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend([b' ', b' ']);
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
            }
            b'\'' => {
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: blank through the closing quote.
                    out.push(b' ');
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        out.extend([b' ', b' '].iter().take(if b[i] == b'\\' { 2 } else { 1 }));
                        i += if b[i] == b'\\' { 2 } else { 1 };
                    }
                    if i < b.len() {
                        out.push(b' ');
                        i += 1;
                    }
                } else if b.get(i + 2) == Some(&b'\'') {
                    out.extend([b' ', b' ', b' ']);
                    i += 3;
                } else {
                    // Lifetime — plain code, keep it.
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    // The byte-for-byte blanking above preserves UTF-8 only for code we
    // copied verbatim; blanked regions are ASCII spaces, so this cannot
    // fail on valid input.
    String::from_utf8_lossy(&out).into_owned()
}

fn is_ident(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Per-line flag: is this line inside a `#[cfg(test)]`-gated item?
/// Found by brace-matching on the code view from each `#[cfg(test)]`
/// attribute to the end of the item it gates.
pub fn test_line_mask(view: &str) -> Vec<bool> {
    let n_lines = view.lines().count();
    let mut mask = vec![false; n_lines + 2];
    let bytes = view.as_bytes();
    let mut search = 0;
    while let Some(off) = view[search..].find("#[cfg(test)]") {
        let start = search + off;
        search = start + 1;
        // Find the gated item's opening brace, then match it.
        let Some(brace_off) = view[start..].find('{') else {
            break;
        };
        let mut depth = 0usize;
        let mut end = start + brace_off;
        for (k, &ch) in bytes.iter().enumerate().skip(start + brace_off) {
            match ch {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        let first = line_of(view, start);
        let last = line_of(view, end);
        for m in &mut mask[first..=last.min(n_lines)] {
            *m = true;
        }
    }
    mask
}

/// 1-based line number of byte offset `pos`.
pub(crate) fn line_of(text: &str, pos: usize) -> usize {
    text.as_bytes()[..pos]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// Rules 1 and 2 over one file. `path` is repo-relative with `/`
/// separators. Test code (files under a `tests/` directory, `benches/`,
/// `examples/`, and `#[cfg(test)]` items) is exempt from rule 2.
pub fn lint_source(path: &str, src: &str, allow: &[AllowEntry]) -> Vec<Violation> {
    let mut used = vec![false; allow.len()];
    lint_source_tracked(path, src, allow, &mut used)
}

/// [`lint_source`], additionally marking which allowlist entries fired
/// in `used` (one slot per entry) so `run` can report stale ones (`L4`).
pub fn lint_source_tracked(
    path: &str,
    src: &str,
    allow: &[AllowEntry],
    used: &mut [bool],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let view = code_view(src);
    let src_lines: Vec<&str> = src.lines().collect();
    let mask = test_line_mask(&view);
    let in_tests = path.contains("/tests/")
        || path.starts_with("tests/")
        || path.contains("/benches/")
        || path.starts_with("examples/");

    // Rule 1: every `unsafe` token needs a SAFETY comment nearby.
    let mut search = 0;
    while let Some(off) = view[search..].find("unsafe") {
        let pos = search + off;
        search = pos + 6;
        let before = if pos == 0 {
            b' '
        } else {
            view.as_bytes()[pos - 1]
        };
        let after = *view.as_bytes().get(pos + 6).unwrap_or(&b' ');
        if is_ident(before) || is_ident(after) {
            continue; // part of a longer identifier, e.g. `unsafe_op_…`
        }
        let line = line_of(&view, pos);
        let lo = line.saturating_sub(SAFETY_WINDOW + 1);
        let documented = src_lines[lo..line].iter().any(|l| l.contains("SAFETY:"));
        if !documented {
            out.push(Violation {
                file: path.to_string(),
                line,
                rule: "L1",
                message: "`unsafe` without a `// SAFETY:` comment in the 3 lines above".into(),
            });
        }
    }

    // Rule 2: no unwrap/expect in non-test trust-boundary code.
    if BANNED_PANIC_CRATES.iter().any(|c| path.starts_with(c)) && !in_tests {
        for (idx, vline) in view.lines().enumerate() {
            let line_no = idx + 1;
            if mask.get(line_no).copied().unwrap_or(false) {
                continue;
            }
            for needle in [".unwrap()", ".expect("] {
                if !vline.contains(needle) {
                    continue;
                }
                let original = src_lines.get(idx).copied().unwrap_or("");
                let mut allowed = false;
                for (i, a) in allow.iter().enumerate() {
                    let rule_matches = matches!(a.rule.as_deref(), None | Some("L2"));
                    if rule_matches && path.ends_with(&a.path) && original.contains(&a.needle) {
                        allowed = true;
                        if let Some(u) = used.get_mut(i) {
                            *u = true;
                        }
                    }
                }
                if !allowed {
                    out.push(Violation {
                        file: path.to_string(),
                        line: line_no,
                        rule: "L2",
                        message: format!(
                            "`{needle}` in trust-boundary code (return an error or \
                             add a justified entry to crates/xtask/lint-allow.txt)"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Rule 3 over the whole file set: every variant of every `pub enum
/// *Error` must be constructed somewhere. An occurrence of
/// `Enum::Variant` (or `Self::Variant` — imprecise but cheap) counts as
/// a construction unless the rest of its line contains `=>`, which marks
/// it as a match-arm pattern.
pub fn check_error_enums(files: &[(String, String)]) -> Vec<Violation> {
    let views: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.clone(), code_view(s)))
        .collect();

    let mut out = Vec::new();
    for (path, view) in &views {
        let mut search = 0;
        while let Some(off) = view[search..].find("pub enum ") {
            let start = search + off;
            search = start + 1;
            let rest = &view[start + "pub enum ".len()..];
            let name: String = rest.chars().take_while(|c| is_ident(*c as u8)).collect();
            if !name.ends_with("Error") {
                continue;
            }
            let decl_line = line_of(view, start);
            for variant in enum_variants(rest) {
                if !variant_constructed(&views, &name, &variant) {
                    out.push(Violation {
                        file: path.clone(),
                        line: decl_line,
                        rule: "L3",
                        message: format!(
                            "error variant `{name}::{variant}` is never constructed \
                             (dead error path — delete it or use it)"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Variant names of the enum whose body starts in `rest` (text after
/// `pub enum `): identifiers at brace depth 1 that start an item chunk.
fn enum_variants(rest: &str) -> Vec<String> {
    let Some(body_start) = rest.find('{') else {
        return Vec::new();
    };
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    let mut variants = Vec::new();
    let mut at_item_start = true;
    let mut i = body_start;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'{' | b'(' | b'<' | b'[' => {
                if c == b'{' {
                    depth += 1;
                    if depth == 1 {
                        at_item_start = true;
                        i += 1;
                        continue;
                    }
                }
                // Payload of a variant: skip to the matching closer so
                // field idents are not mistaken for variants.
                if depth == 1 {
                    let open = c;
                    let close = match c {
                        b'(' => b')',
                        b'<' => b'>',
                        b'[' => b']',
                        _ => b'}',
                    };
                    let mut d = 1usize;
                    i += 1;
                    while i < bytes.len() && d > 0 {
                        if bytes[i] == open {
                            d += 1;
                        } else if bytes[i] == close {
                            d -= 1;
                        }
                        i += 1;
                    }
                    continue;
                }
                i += 1;
            }
            b'}' => {
                if depth == 1 {
                    break;
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b',' => {
                if depth == 1 {
                    at_item_start = true;
                }
                i += 1;
            }
            // Attribute on a variant: skip the [...] group.
            b'#' if bytes.get(i + 1) == Some(&b'[') => {
                let mut d = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'[' {
                        d += 1;
                    } else if bytes[i] == b']' {
                        d -= 1;
                        if d == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
            _ if depth == 1 && at_item_start && is_ident(c) && c.is_ascii_uppercase() => {
                let s = i;
                while i < bytes.len() && is_ident(bytes[i]) {
                    i += 1;
                }
                variants.push(rest[s..i].to_string());
                at_item_start = false;
            }
            _ => {
                i += 1;
            }
        }
    }
    variants
}

fn variant_constructed(views: &[(String, String)], enum_name: &str, variant: &str) -> bool {
    let qualified = format!("{enum_name}::{variant}");
    let selfed = format!("Self::{variant}");
    for (_, view) in views {
        for line in view.lines() {
            for pat in [&qualified, &selfed] {
                let mut from = 0;
                while let Some(off) = line[from..].find(pat.as_str()) {
                    let pos = from + off;
                    from = pos + 1;
                    let before = if pos == 0 {
                        b' '
                    } else {
                        line.as_bytes()[pos - 1]
                    };
                    let after = *line.as_bytes().get(pos + pat.len()).unwrap_or(&b' ');
                    if is_ident(before) || is_ident(after) || before == b':' {
                        continue; // part of a longer path or identifier
                    }
                    // `X::V(…) => …` is a match pattern, not a construction.
                    if !line[pos + pat.len()..].contains("=>") {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Collect `.rs` files under the repo root (crates/, tests/, examples/),
/// skipping `target/` and the vendored `third_party/` crates, returning
/// `(repo-relative path, contents)` pairs.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files).map_err(|e| format!("walking {}: {e}", dir.display()))?;
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&f).map_err(|e| format!("reading {}: {e}", f.display()))?;
        out.push((rel, text));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        if path.is_dir() {
            if matches!(name.as_deref(), Some("target") | Some(".git")) {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run every lint over the workspace at `root` — the general rules
/// (`L1`–`L3`), the concurrency audit (`C100`–`C400`) against
/// `LOCK_ORDER.md`, and the stale-allowlist check (`L4`). Returns all
/// violations sorted by file and line.
pub fn run(root: &Path) -> Result<Vec<Violation>, String> {
    let allow_text = fs::read_to_string(root.join("crates/xtask/lint-allow.txt"))
        .map_err(|e| format!("reading lint-allow.txt: {e}"))?;
    let allow = parse_allowlist(&allow_text);
    let mut used = vec![false; allow.len()];
    let files = collect_sources(root)?;
    let mut violations = Vec::new();
    for (path, src) in &files {
        violations.extend(lint_source_tracked(path, src, &allow, &mut used));
    }
    violations.extend(check_error_enums(&files));
    let order_text = fs::read_to_string(root.join("LOCK_ORDER.md"))
        .map_err(|e| format!("reading LOCK_ORDER.md: {e}"))?;
    let order = conc::parse_lock_order(&order_text)?;
    violations.extend(conc::check_concurrency(&files, &order, &allow, &mut used));
    for (entry, &was_used) in allow.iter().zip(used.iter()) {
        if !was_used {
            violations.push(Violation {
                file: "crates/xtask/lint-allow.txt".to_string(),
                line: entry.line,
                rule: "L4",
                message: format!(
                    "unused allowlist entry `{}: {}` — the code it excused is \
                     gone; delete the entry",
                    entry.path, entry.needle
                ),
            });
        }
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask is two levels below the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_view_blanks_strings_and_comments() {
        let src = "let a = \"x.unwrap()\"; // .unwrap()\nlet b = 'c'; /* unsafe */ let l: &'static str = r#\".expect(\"#;\n";
        let v = code_view(src);
        assert!(!v.contains("unwrap"), "{v}");
        assert!(!v.contains("unsafe"), "{v}");
        assert!(!v.contains(".expect("), "{v}");
        assert!(v.contains("'static"), "lifetime survives: {v}");
        assert_eq!(v.lines().count(), src.lines().count());
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = lint_source("crates/columnar/src/x.rs", src, &[]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L1");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let src =
            "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        assert!(lint_source("crates/columnar/src/x.rs", src, &[]).is_empty());
    }

    #[test]
    fn unwrap_in_trust_boundary_is_flagged() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let v = lint_source("crates/ocs/src/x.rs", src, &[]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L2");
        // Same code outside the banned crates is fine.
        assert!(lint_source("crates/engine/src/x.rs", src, &[]).is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_module_passes() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
        assert!(lint_source("crates/ocs/src/x.rs", src, &[]).is_empty());
    }

    #[test]
    fn allowlist_suppresses_expect() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.expect(\"invariant: present\")\n}\n";
        let allow = parse_allowlist("# comment\nsrc/x.rs: invariant: present\n");
        assert!(lint_source("crates/ocs/src/x.rs", src, &allow).is_empty());
        // The needle must actually match.
        let other = parse_allowlist("src/x.rs: some other line\n");
        assert_eq!(lint_source("crates/ocs/src/x.rs", src, &other).len(), 1);
    }

    #[test]
    fn dead_error_variant_is_flagged() {
        let files = vec![
            (
                "crates/a/src/lib.rs".to_string(),
                "#[derive(Debug)]\npub enum AError {\n    Used(String),\n    Dead(u32),\n}\n"
                    .to_string(),
            ),
            (
                "crates/a/src/other.rs".to_string(),
                "fn g() -> AError {\n    AError::Used(\"x\".into())\n}\nfn h(e: &AError) -> bool {\n    matches!(e, AError::Dead(_) if false)\n}\n"
                    .to_string(),
            ),
        ];
        // `Dead` appears only where the line has no `=>`… the matches!
        // occurrence counts, so seed a stricter case: a pattern-only use.
        let v = check_error_enums(&files);
        assert!(
            v.is_empty(),
            "matches! occurrence counts as liveness: {v:?}"
        );

        let files2 = vec![(
            "crates/a/src/lib.rs".to_string(),
            "pub enum BError {\n    Used,\n    Dead,\n}\nfn f(e: BError) -> u8 {\n    match e {\n        BError::Used => 1,\n        BError::Dead => 2,\n    }\n}\nfn mk() -> BError {\n    BError::Used\n}\n"
                .to_string(),
        )];
        let v2 = check_error_enums(&files2);
        assert_eq!(v2.len(), 1, "{v2:?}");
        assert_eq!(v2[0].rule, "L3");
        assert!(v2[0].message.contains("BError::Dead"), "{}", v2[0].message);
    }

    #[test]
    fn enum_variant_parsing_handles_payloads_and_attrs() {
        let rest = "XError {\n    #[allow(dead_code)]\n    Io(std::io::Error),\n    Parse { line: usize, msg: String },\n    Eof,\n}";
        assert_eq!(enum_variants(rest), vec!["Io", "Parse", "Eof"]);
    }

    #[test]
    fn allowlist_rule_prefix_parses() {
        let entries = parse_allowlist(
            "# header\nC300 src/a.rs: fetch_add\nsrc/b.rs: invariant: present\nL2 src/c.rs: decoded\n",
        );
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].rule.as_deref(), Some("C300"));
        assert_eq!(entries[0].path, "src/a.rs");
        assert_eq!(entries[0].line, 2);
        assert_eq!(entries[1].rule, None);
        assert_eq!(entries[1].needle, "invariant: present");
        assert_eq!(entries[2].rule.as_deref(), Some("L2"));
        // A path-looking first token is not mistaken for a rule code.
        assert!(!is_rule_token("src/b.rs:"));
        assert!(is_rule_token("C300") && is_rule_token("L2"));
        assert!(!is_rule_token("C") && !is_rule_token("300"));
    }

    #[test]
    fn used_tracking_marks_firing_entries() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.expect(\"invariant: present\")\n}\n";
        let allow = parse_allowlist("src/x.rs: invariant: present\nsrc/x.rs: never fires\n");
        let mut used = vec![false; allow.len()];
        let v = lint_source_tracked("crates/ocs/src/x.rs", src, &allow, &mut used);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(used, vec![true, false]);
        // An explicit L2-prefixed entry also suppresses and marks.
        let allow2 = parse_allowlist("L2 src/x.rs: invariant: present\n");
        let mut used2 = vec![false; allow2.len()];
        assert!(lint_source_tracked("crates/ocs/src/x.rs", src, &allow2, &mut used2).is_empty());
        assert_eq!(used2, vec![true]);
    }

    #[test]
    fn l4_reports_unused_allowlist_entry() {
        let root = std::env::temp_dir().join(format!("xtask-l4-{}", std::process::id()));
        let xtask_dir = root.join("crates/xtask");
        let crate_dir = root.join("crates/a/src");
        fs::create_dir_all(&xtask_dir).expect("mkdir xtask");
        fs::create_dir_all(&crate_dir).expect("mkdir crate");
        fs::write(
            xtask_dir.join("lint-allow.txt"),
            "# one stale entry\nsrc/ghost.rs: nothing here matches\n",
        )
        .expect("write allowlist");
        fs::write(
            root.join("LOCK_ORDER.md"),
            "| rank | lock id | dynamic class | kind | declared in |\n|--|--|--|--|--|\n",
        )
        .expect("write lock order");
        fs::write(crate_dir.join("lib.rs"), "pub fn f() {}\n").expect("write source");
        let violations = run(&root).expect("lint run");
        fs::remove_dir_all(&root).ok();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "L4");
        assert_eq!(violations[0].file, "crates/xtask/lint-allow.txt");
        assert_eq!(violations[0].line, 2);
        assert!(violations[0].message.contains("src/ghost.rs"));
    }

    #[test]
    fn workspace_is_clean() {
        let violations = run(&workspace_root()).expect("lint run");
        assert!(
            violations.is_empty(),
            "repo lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn full_static_analysis_under_two_seconds() {
        let start = std::time::Instant::now();
        run(&workspace_root()).expect("lint run");
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(2),
            "full static analysis took {elapsed:?} (budget: 2s)"
        );
    }
}
