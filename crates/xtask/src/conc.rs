//! Concurrency auditor: static lock-order and atomics analysis.
//!
//! Four passes over the same code view the other lints use, all
//! token-level (no Rust parser), all scoped to non-test code under
//! `crates/` — except `crates/sync/` itself, whose `inner` fields *are*
//! the wrapped locks the auditor models and whose tests deliberately
//! construct inversions:
//!
//! * **Inventory** — every `Mutex`/`RwLock`/`DebugMutex`/`DebugRwLock`
//!   field or static becomes a lock id `<crate>.<field>` (the crate is
//!   the directory under `crates/`). Every id must appear in the
//!   `LOCK_ORDER.md` hierarchy (**C100**), and every hierarchy row must
//!   still match a declaration, with the right kind (**C101**).
//! * **Nesting** — within a function body, acquiring a lock while a
//!   guard of a *higher-ranked* lock is live is an out-of-order
//!   acquisition (**C200**); acquiring while a guard of the *same* lock
//!   is live is a self-deadlock (**C201**). Guard liveness is tracked
//!   per line: `let`-bound guards die at end of scope or at an explicit
//!   `drop(name)`, temporaries at the end of their statement. The scan
//!   is intra-procedural; cross-function cycles are the dynamic
//!   auditor's job (`sync` crate, `lock-audit` feature).
//! * **Atomics** — `Ordering::Relaxed` needs a `// RELAXED:`
//!   justification within the three lines above the statement it
//!   appears in (**C300**), mirroring the `unsafe`/`SAFETY:` rule.
//! * **Yield points** — a live lock guard at a `par_iter`/`rayon::scope`
//!   fan-out or a `next_frame`/`next_batch` stream pull is flagged
//!   (**C400**): the guard would be held across arbitrary other work,
//!   re-entering the executor with a lock held.
//!
//! Violations from C2xx–C4xx can be suppressed with rule-prefixed
//! allowlist entries (`C300 path: needle` in `lint-allow.txt`); C100 and
//! C101 cannot — fix the inventory or the hierarchy instead.

use std::collections::BTreeMap;

use crate::{code_view, line_of, test_line_mask, AllowEntry, Violation};

/// Lines above a statement in which a `// RELAXED:` comment may sit
/// (mirrors the `SAFETY:` window).
const RELAXED_WINDOW: usize = 3;

/// Lock flavor, as declared and as listed in `LOCK_ORDER.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex` / `DebugMutex` — acquired with `.lock()`.
    Mutex,
    /// `RwLock` / `DebugRwLock` — acquired with `.read()` / `.write()`.
    RwLock,
}

impl LockKind {
    /// The `kind` column value in `LOCK_ORDER.md`.
    pub fn label(self) -> &'static str {
        match self {
            LockKind::Mutex => "mutex",
            LockKind::RwLock => "rwlock",
        }
    }
}

/// One lock-typed field (or static) found in the source.
#[derive(Debug, Clone)]
pub struct LockField {
    /// Stable id: `<crate dir>.<field name>`.
    pub id: String,
    /// Field (or static) name.
    pub field: String,
    /// Mutex or RwLock.
    pub kind: LockKind,
    /// Declared via the auditing `DebugMutex`/`DebugRwLock` wrappers.
    pub debug_wrapper: bool,
    /// Repo-relative file of the declaration.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
}

/// One parsed `LOCK_ORDER.md` row.
#[derive(Debug, Clone)]
pub struct OrderEntry {
    /// Acquisition rank: a thread may only acquire locks of *strictly
    /// increasing* rank while holding others.
    pub rank: u32,
    /// Lock id, matching [`LockField::id`].
    pub id: String,
    /// Dynamic lock class (the `sync::DebugMutex::named` name).
    pub class: String,
    /// Declared kind.
    pub kind: LockKind,
    /// The declaring file, informational.
    pub declared_in: String,
    /// 1-based line in `LOCK_ORDER.md`.
    pub line: usize,
}

/// Parse `LOCK_ORDER.md`: the first markdown table whose rows are
/// `| rank | lock id | dynamic class | kind | declared in |`. Header and
/// separator rows are skipped; ranks must be unique and ids unique.
pub fn parse_lock_order(text: &str) -> Result<Vec<OrderEntry>, String> {
    let mut out: Vec<OrderEntry> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() != 5 {
            continue;
        }
        // Header / separator rows.
        if cells[0].eq_ignore_ascii_case("rank") || cells[0].starts_with('-') {
            continue;
        }
        let rank: u32 = cells[0]
            .parse()
            .map_err(|_| format!("LOCK_ORDER.md:{line_no}: bad rank `{}`", cells[0]))?;
        let kind = match cells[3] {
            "mutex" => LockKind::Mutex,
            "rwlock" => LockKind::RwLock,
            other => {
                return Err(format!(
                    "LOCK_ORDER.md:{line_no}: kind must be `mutex` or `rwlock`, got `{other}`"
                ))
            }
        };
        if out.iter().any(|e| e.id == cells[1]) {
            return Err(format!(
                "LOCK_ORDER.md:{line_no}: duplicate lock id `{}`",
                cells[1]
            ));
        }
        if out.iter().any(|e| e.rank == rank) {
            return Err(format!("LOCK_ORDER.md:{line_no}: duplicate rank {rank}"));
        }
        out.push(OrderEntry {
            rank,
            id: cells[1].to_string(),
            class: cells[2].to_string(),
            kind,
            declared_in: cells[4].to_string(),
            line: line_no,
        });
    }
    out.sort_by_key(|e| e.rank);
    Ok(out)
}

/// Is this file in scope for the concurrency passes? Production code
/// under `crates/`, excluding the auditor implementation itself and the
/// usual test/bench trees.
fn in_scope(path: &str) -> bool {
    path.starts_with("crates/")
        && !path.starts_with("crates/sync/")
        && !path.contains("/tests/")
        && !path.contains("/benches/")
}

/// The crate directory of a `crates/<dir>/…` path.
fn crate_key(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

fn is_ident(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Extract every lock declaration from the file set.
pub fn lock_inventory(files: &[(String, String)]) -> Vec<LockField> {
    const PATTERNS: &[(&str, LockKind, bool)] = &[
        ("DebugMutex<", LockKind::Mutex, true),
        ("DebugRwLock<", LockKind::RwLock, true),
        ("Mutex<", LockKind::Mutex, false),
        ("RwLock<", LockKind::RwLock, false),
    ];
    let mut out: Vec<LockField> = Vec::new();
    for (path, src) in files {
        if !in_scope(path) {
            continue;
        }
        let Some(krate) = crate_key(path) else {
            continue;
        };
        let view = code_view(src);
        let mask = test_line_mask(&view);
        for (idx, vline) in view.lines().enumerate() {
            let line_no = idx + 1;
            if mask.get(line_no).copied().unwrap_or(false) {
                continue;
            }
            for &(pat, kind, debug_wrapper) in PATTERNS {
                let mut from = 0;
                while let Some(off) = vline[from..].find(pat) {
                    let pos = from + off;
                    from = pos + 1;
                    // Token boundary: `Mutex<` inside `DebugMutex<` has an
                    // identifier byte before it and is skipped here (the
                    // Debug pattern claims it).
                    if pos > 0 && is_ident(vline.as_bytes()[pos - 1]) {
                        continue;
                    }
                    let Some(field) = field_name_before(&vline[..pos]) else {
                        continue;
                    };
                    let id = format!("{krate}.{field}");
                    if out.iter().any(|f| f.id == id && f.kind == kind) {
                        continue; // same field seen twice (re-export etc.)
                    }
                    out.push(LockField {
                        id,
                        field,
                        kind,
                        debug_wrapper,
                        file: path.clone(),
                        line: line_no,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| a.id.cmp(&b.id));
    out
}

/// The field (or static) name declared before a lock type at the end of
/// `prefix` — the identifier in front of the last *single* colon
/// (`name: Arc<DebugMutex<…`, `static NAME: Mutex<…`). Returns `None`
/// for non-declaration positions: reference types (`&Mutex<…`, a borrow
/// in a signature) and anything inside parentheses (parameters).
fn field_name_before(prefix: &str) -> Option<String> {
    if prefix.contains('(') || prefix.trim_end().ends_with('&') {
        return None;
    }
    let b = prefix.as_bytes();
    // Find the last single `:` (not part of a `::` path separator).
    let mut colon = None;
    let mut j = 0;
    while j < b.len() {
        if b[j] == b':' {
            if b.get(j + 1) == Some(&b':') {
                j += 2;
                continue;
            }
            colon = Some(j);
        }
        j += 1;
    }
    let colon = colon?;
    let mut end = colon;
    while end > 0 && b[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident(b[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    Some(prefix[start..end].to_string())
}

/// First line of the multi-line statement containing `line` (1-based):
/// walk upward while the previous line continues the same expression
/// (is non-empty and does not end a statement or open/close a block).
fn stmt_anchor(view_lines: &[&str], line: usize) -> usize {
    let mut l = line;
    while l > 1 {
        let prev = view_lines[l - 2].trim();
        if prev.is_empty() {
            break;
        }
        match prev.chars().last() {
            Some(';') | Some('{') | Some('}') => break,
            _ => l -= 1,
        }
    }
    l
}

/// Does an allowlist entry suppress this candidate violation? C-rules
/// require an explicit rule prefix; bare entries are the L2 allowlist.
fn allowed(
    allow: &[AllowEntry],
    used: &mut [bool],
    rule: &str,
    path: &str,
    src_line: &str,
) -> bool {
    let mut hit = false;
    for (i, a) in allow.iter().enumerate() {
        if a.rule.as_deref() == Some(rule)
            && path.ends_with(&a.path)
            && src_line.contains(&a.needle)
        {
            if let Some(u) = used.get_mut(i) {
                *u = true;
            }
            hit = true;
        }
    }
    hit
}

/// A guard assumed live during the nesting scan.
struct LiveGuard {
    id: String,
    binding: Option<String>,
    /// Brace depth at the acquisition; the guard dies when the scan
    /// leaves this depth.
    depth: usize,
    /// Temporaries (no `let`) die at the end of their statement.
    temp: bool,
    line: usize,
}

/// Tokens after which holding a lock guard is flagged (C400): rayon
/// fan-out and streaming yield points.
const YIELD_TOKENS: &[&str] = &[
    ".par_iter(",
    ".into_par_iter(",
    ".par_bridge(",
    "rayon::scope(",
    ".next_frame(",
    ".next_batch(",
];

/// All concurrency passes over the file set. `used` has one slot per
/// allowlist entry and is set when an entry suppresses a violation.
pub fn check_concurrency(
    files: &[(String, String)],
    order: &[OrderEntry],
    allow: &[AllowEntry],
    used: &mut [bool],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let inventory = lock_inventory(files);

    // C100: every lock declaration appears in the hierarchy.
    for f in &inventory {
        if !order.iter().any(|e| e.id == f.id) {
            out.push(Violation {
                file: f.file.clone(),
                line: f.line,
                rule: "C100",
                message: format!(
                    "lock `{}` ({}) is not declared in LOCK_ORDER.md — add it \
                     with a rank that matches its acquisition order",
                    f.id,
                    f.kind.label()
                ),
            });
        }
    }
    // C101: every hierarchy row still matches a declaration, same kind.
    for e in order {
        match inventory.iter().find(|f| f.id == e.id) {
            None => out.push(Violation {
                file: "LOCK_ORDER.md".to_string(),
                line: e.line,
                rule: "C101",
                message: format!(
                    "stale LOCK_ORDER.md entry: no lock field `{}` is declared \
                     anywhere — remove the row or fix the id",
                    e.id
                ),
            }),
            Some(f) if f.kind != e.kind => out.push(Violation {
                file: "LOCK_ORDER.md".to_string(),
                line: e.line,
                rule: "C101",
                message: format!(
                    "LOCK_ORDER.md entry `{}` says {} but the declaration at \
                     {}:{} is a {}",
                    e.id,
                    e.kind.label(),
                    f.file,
                    f.line,
                    f.kind.label()
                ),
            }),
            Some(_) => {}
        }
    }

    // Per-crate field → lock map for receiver resolution.
    let mut fields: BTreeMap<&str, BTreeMap<&str, &LockField>> = BTreeMap::new();
    for f in &inventory {
        let krate = f.id.split('.').next().unwrap_or("");
        fields.entry(krate).or_default().insert(&f.field, f);
    }
    let rank: BTreeMap<&str, u32> = order.iter().map(|e| (e.id.as_str(), e.rank)).collect();

    for (path, src) in files {
        if !in_scope(path) {
            continue;
        }
        let Some(krate) = crate_key(path) else {
            continue;
        };
        let crate_fields = fields.get(krate);
        let view = code_view(src);
        let mask = test_line_mask(&view);
        let src_lines: Vec<&str> = src.lines().collect();
        let view_lines: Vec<&str> = view.lines().collect();

        out.extend(scan_nesting(
            path,
            &view,
            &mask,
            &src_lines,
            crate_fields,
            &rank,
            allow,
            used,
        ));
        out.extend(scan_relaxed(
            path,
            &view,
            &mask,
            &src_lines,
            &view_lines,
            allow,
            used,
        ));
    }
    out
}

/// C200/C201/C400: guard-liveness walk over one file's code view.
#[allow(clippy::too_many_arguments)]
fn scan_nesting(
    path: &str,
    view: &str,
    mask: &[bool],
    src_lines: &[&str],
    crate_fields: Option<&BTreeMap<&str, &LockField>>,
    rank: &BTreeMap<&str, u32>,
    allow: &[AllowEntry],
    used: &mut [bool],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let b = view.as_bytes();
    let mut depth = 0usize;
    let mut line = 1usize;
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut flagged_yield_lines: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                i += 1;
            }
            b';' => {
                guards.retain(|g| !(g.temp && g.depth == depth));
                i += 1;
            }
            b'd' if view[i..].starts_with("drop")
                && (i == 0 || !is_ident(b[i - 1]))
                && !is_ident(*b.get(i + 4).unwrap_or(&b' ')) =>
            {
                // `drop(name)` releases the named guard early.
                if let Some(name) = paren_ident(&view[i + 4..]) {
                    guards.retain(|g| g.binding.as_deref() != Some(name));
                }
                i += 4;
            }
            b'.' => {
                let method = [
                    (".lock()", LockKind::Mutex),
                    (".read()", LockKind::RwLock),
                    (".write()", LockKind::RwLock),
                ]
                .into_iter()
                .find(|(m, _)| view[i..].starts_with(m));
                let Some((m, kind)) = method else {
                    // Not a lock method — but maybe a `.`-prefixed yield
                    // point (`.par_iter(` etc.).
                    check_yield_point(
                        path,
                        view,
                        i,
                        line,
                        mask,
                        src_lines,
                        &guards,
                        &mut flagged_yield_lines,
                        allow,
                        used,
                        &mut out,
                    );
                    i += 1;
                    continue;
                };
                let masked = mask.get(line).copied().unwrap_or(false);
                let lock = crate_fields.and_then(|cf| {
                    receiver_ident(view, i)
                        .and_then(|r| cf.get(r.as_str()).copied())
                        .filter(|f| f.kind == kind)
                });
                if let (Some(lock), false) = (lock, masked) {
                    let src_line = src_lines.get(line - 1).copied().unwrap_or("");
                    for g in &guards {
                        if g.id == lock.id {
                            if !allowed(allow, used, "C201", path, src_line) {
                                out.push(Violation {
                                    file: path.to_string(),
                                    line,
                                    rule: "C201",
                                    message: format!(
                                        "acquiring `{}` while a guard of the same lock \
                                         (taken at line {}) is still live — self-deadlock",
                                        lock.id, g.line
                                    ),
                                });
                            }
                        } else if let (Some(&held), Some(&acq)) =
                            (rank.get(g.id.as_str()), rank.get(lock.id.as_str()))
                        {
                            if held > acq && !allowed(allow, used, "C200", path, src_line) {
                                out.push(Violation {
                                    file: path.to_string(),
                                    line,
                                    rule: "C200",
                                    message: format!(
                                        "acquiring `{}` (rank {acq}) while holding `{}` \
                                         (rank {held}, taken at line {}) — out of order \
                                         per LOCK_ORDER.md",
                                        lock.id, g.id, g.line
                                    ),
                                });
                            }
                        }
                    }
                    let binding = let_binding(view, i);
                    guards.push(LiveGuard {
                        id: lock.id.clone(),
                        temp: binding.is_none(),
                        binding,
                        depth,
                        line,
                    });
                }
                i += m.len();
            }
            _ => {
                check_yield_point(
                    path,
                    view,
                    i,
                    line,
                    mask,
                    src_lines,
                    &guards,
                    &mut flagged_yield_lines,
                    allow,
                    used,
                    &mut out,
                );
                i += 1;
            }
        }
    }
    out
}

/// C400 at one byte position: if a yield-point token starts at `i` while
/// any guard is live (outside test code), emit a violation — once per
/// line, suppressible with a `C400`-prefixed allowlist entry.
#[allow(clippy::too_many_arguments)]
fn check_yield_point(
    path: &str,
    view: &str,
    i: usize,
    line: usize,
    mask: &[bool],
    src_lines: &[&str],
    guards: &[LiveGuard],
    flagged_yield_lines: &mut Vec<usize>,
    allow: &[AllowEntry],
    used: &mut [bool],
    out: &mut Vec<Violation>,
) {
    if mask.get(line).copied().unwrap_or(false)
        || guards.is_empty()
        || flagged_yield_lines.contains(&line)
    {
        return;
    }
    let Some(tok) = YIELD_TOKENS.iter().find(|t| view[i..].starts_with(*t)) else {
        return;
    };
    let src_line = src_lines.get(line - 1).copied().unwrap_or("");
    if !allowed(allow, used, "C400", path, src_line) {
        let held: Vec<&str> = guards.iter().map(|g| g.id.as_str()).collect();
        out.push(Violation {
            file: path.to_string(),
            line,
            rule: "C400",
            message: format!(
                "`{}` reached while lock guard(s) [{}] are live — don't hold \
                 locks across rayon fan-out or stream yield points",
                tok.trim_start_matches('.').trim_end_matches('('),
                held.join(", ")
            ),
        });
    }
    flagged_yield_lines.push(line);
}

/// The identifier the method at byte offset `dot` (a `.`) is called on:
/// walk back over whitespace, then collect the identifier. `a.b.lock()`
/// resolves to `b` — the final path segment is the field.
fn receiver_ident(view: &str, dot: usize) -> Option<String> {
    let b = view.as_bytes();
    let mut j = dot;
    while j > 0 && (b[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && is_ident(b[j - 1]) {
        j -= 1;
    }
    if j == end {
        return None;
    }
    Some(view[j..end].to_string())
}

/// If the statement containing byte offset `pos` is a `let` binding,
/// its bound name (skipping `mut`); `None` for temporaries.
fn let_binding(view: &str, pos: usize) -> Option<String> {
    let b = view.as_bytes();
    let mut start = pos;
    while start > 0 && !matches!(b[start - 1], b';' | b'{' | b'}') {
        start -= 1;
    }
    let stmt = &view[start..pos];
    let let_off = stmt.find("let ")?;
    let mut rest = stmt[let_off + 4..].trim_start();
    if let Some(r) = rest.strip_prefix("mut ") {
        rest = r.trim_start();
    }
    let name: String = rest.chars().take_while(|c| is_ident(*c as u8)).collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// The identifier inside `(…)` right after a `drop` token, if the text
/// starts with a parenthesized single identifier.
fn paren_ident(after: &str) -> Option<&str> {
    let t = after.trim_start();
    let inner = t.strip_prefix('(')?;
    let close = inner.find(')')?;
    let name = inner[..close].trim();
    if !name.is_empty() && name.bytes().all(is_ident) {
        Some(name)
    } else {
        None
    }
}

/// C300: `Ordering::Relaxed` needs a `// RELAXED:` justification within
/// [`RELAXED_WINDOW`] lines above the statement it belongs to.
#[allow(clippy::too_many_arguments)]
fn scan_relaxed(
    path: &str,
    view: &str,
    mask: &[bool],
    src_lines: &[&str],
    view_lines: &[&str],
    allow: &[AllowEntry],
    used: &mut [bool],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(off) = view[search..].find("Relaxed") {
        let pos = search + off;
        search = pos + "Relaxed".len();
        let b = view.as_bytes();
        let before = if pos == 0 { b' ' } else { b[pos - 1] };
        let after = *b.get(pos + "Relaxed".len()).unwrap_or(&b' ');
        if is_ident(before) || is_ident(after) {
            continue;
        }
        let line = line_of(view, pos);
        if mask.get(line).copied().unwrap_or(false) {
            continue;
        }
        let anchor = stmt_anchor(view_lines, line);
        let lo = anchor.saturating_sub(RELAXED_WINDOW + 1);
        let documented = src_lines[lo..line.min(src_lines.len())]
            .iter()
            .any(|l| l.contains("RELAXED:"));
        if !documented {
            let src_line = src_lines.get(line - 1).copied().unwrap_or("");
            if !allowed(allow, used, "C300", path, src_line) {
                out.push(Violation {
                    file: path.to_string(),
                    line,
                    rule: "C300",
                    message: "`Ordering::Relaxed` without a `// RELAXED:` justification \
                              in the 3 lines above its statement"
                        .into(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORDER_MD: &str = "\
# order\n\
| rank | lock id | dynamic class | kind | declared in |\n\
|-----:|---------|---------------|------|-------------|\n\
| 10 | a.first | a.first | mutex | crates/a/src/lib.rs |\n\
| 20 | a.second | a.second | rwlock | crates/a/src/lib.rs |\n";

    fn order() -> Vec<OrderEntry> {
        parse_lock_order(ORDER_MD).expect("order parses")
    }

    fn check_one(src: &str, order: &[OrderEntry]) -> Vec<Violation> {
        let files = vec![("crates/a/src/lib.rs".to_string(), src.to_string())];
        check_concurrency(&files, order, &[], &mut [])
    }

    /// `check_one` minus the C101 rows that fire whenever a test source
    /// omits the `a.first`/`a.second` declarations on purpose.
    fn check_one_no_inv(src: &str, order: &[OrderEntry]) -> Vec<Violation> {
        check_one(src, order)
            .into_iter()
            .filter(|v| v.rule != "C101" && v.rule != "C100")
            .collect()
    }

    #[test]
    fn parses_lock_order_table() {
        let o = order();
        assert_eq!(o.len(), 2);
        assert_eq!(o[0].rank, 10);
        assert_eq!(o[0].id, "a.first");
        assert_eq!(o[0].kind, LockKind::Mutex);
        assert_eq!(o[1].kind, LockKind::RwLock);
        assert_eq!(o[1].line, 5);
    }

    #[test]
    fn rejects_duplicate_ids_and_ranks() {
        let dup_id = format!("{ORDER_MD}| 30 | a.first | x | mutex | crates/a/src/lib.rs |\n");
        assert!(parse_lock_order(&dup_id).is_err());
        let dup_rank = format!("{ORDER_MD}| 10 | a.third | x | mutex | crates/a/src/lib.rs |\n");
        assert!(parse_lock_order(&dup_rank).is_err());
        assert!(parse_lock_order("| 1 | x | x | spinlock | y |\n").is_err());
    }

    #[test]
    fn inventory_finds_fields_and_statics() {
        let src = "\
use sync::{DebugMutex, DebugRwLock};\n\
struct S {\n    first: DebugMutex<u32>,\n    second: Arc<DebugRwLock<Vec<u8>>>,\n}\n\
static THIRD: Mutex<u8> = Mutex::new(0);\n\
fn f(param: &Mutex<u8>) {}\n";
        let files = vec![("crates/a/src/lib.rs".to_string(), src.to_string())];
        let inv = lock_inventory(&files);
        let ids: Vec<&str> = inv.iter().map(|f| f.id.as_str()).collect();
        assert_eq!(ids, vec!["a.THIRD", "a.first", "a.second"]);
        assert!(
            inv.iter()
                .find(|f| f.id == "a.first")
                .unwrap()
                .debug_wrapper
        );
        assert!(
            !inv.iter()
                .find(|f| f.id == "a.THIRD")
                .unwrap()
                .debug_wrapper
        );
        assert_eq!(
            inv.iter().find(|f| f.id == "a.second").unwrap().kind,
            LockKind::RwLock
        );
    }

    #[test]
    fn c100_undeclared_lock() {
        let src = "struct S {\n    ghost: DebugMutex<u32>,\n}\n";
        let v = check_one(src, &order());
        assert!(v.iter().any(|v| v.rule == "C100" && v.line == 2), "{v:?}");
        assert!(v[0].message.contains("a.ghost"), "{}", v[0].message);
        // The hierarchy rows are now stale, too.
        assert_eq!(v.iter().filter(|v| v.rule == "C101").count(), 2);
    }

    #[test]
    fn c101_stale_entry_and_kind_mismatch() {
        // `a.first` declared as rwlock although the table says mutex;
        // `a.second` missing entirely.
        let src = "struct S {\n    first: DebugRwLock<u32>,\n}\n";
        let v = check_one(src, &order());
        let c101: Vec<_> = v.iter().filter(|v| v.rule == "C101").collect();
        assert_eq!(c101.len(), 2, "{v:?}");
        assert!(c101.iter().all(|v| v.file == "LOCK_ORDER.md"));
        assert!(c101.iter().any(|v| v.message.contains("says mutex")));
        assert!(c101.iter().any(|v| v.message.contains("stale")));
    }

    fn clean_decls() -> &'static str {
        "struct S {\n    first: DebugMutex<u32>,\n    second: DebugRwLock<u32>,\n}\n"
    }

    #[test]
    fn c200_out_of_order_nesting() {
        let src = format!(
            "{}impl S {{\n    fn f(&self) {{\n        let g = self.second.read();\n        let h = self.first.lock();\n        drop(h);\n        drop(g);\n    }}\n}}\n",
            clean_decls()
        );
        let v = check_one(&src, &order());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "C200");
        assert_eq!(v[0].line, 8);
        assert!(v[0].message.contains("a.first"), "{}", v[0].message);
        assert!(v[0].message.contains("a.second"), "{}", v[0].message);
    }

    #[test]
    fn in_order_nesting_passes() {
        let src = format!(
            "{}impl S {{\n    fn f(&self) {{\n        let g = self.first.lock();\n        let h = self.second.write();\n    }}\n}}\n",
            clean_decls()
        );
        assert!(check_one(&src, &order()).is_empty());
    }

    #[test]
    fn drop_releases_guard_for_ordering() {
        // second is released before first is taken: no violation.
        let src = format!(
            "{}impl S {{\n    fn f(&self) {{\n        let g = self.second.read();\n        drop(g);\n        let h = self.first.lock();\n    }}\n}}\n",
            clean_decls()
        );
        assert!(check_one(&src, &order()).is_empty());
    }

    #[test]
    fn scope_exit_releases_guard() {
        let src = format!(
            "{}impl S {{\n    fn f(&self) {{\n        {{\n            let g = self.second.read();\n        }}\n        let h = self.first.lock();\n    }}\n}}\n",
            clean_decls()
        );
        assert!(check_one(&src, &order()).is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = format!(
            "{}impl S {{\n    fn f(&self) {{\n        self.second.read().len();\n        let h = self.first.lock();\n    }}\n}}\n",
            clean_decls()
        );
        assert!(check_one(&src, &order()).is_empty());
    }

    #[test]
    fn c201_self_nest() {
        let src = format!(
            "{}impl S {{\n    fn f(&self) {{\n        let g = self.first.lock();\n        let h = self.first.lock();\n    }}\n}}\n",
            clean_decls()
        );
        let v = check_one(&src, &order());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "C201");
        assert!(v[0].message.contains("self-deadlock"));
    }

    #[test]
    fn c300_relaxed_without_justification() {
        let src = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        let v = check_one_no_inv(src, &order());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "C300");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn c300_justified_passes_including_multiline_statements() {
        let src = "\
fn f(c: &AtomicU64) {\n\
    // RELAXED: isolated counter.\n\
    c.fetch_add(1, Ordering::Relaxed);\n\
    // RELAXED: CAS loop, value-carried state.\n\
    c.compare_exchange(\n        0,\n        1,\n        Ordering::Relaxed,\n        Ordering::Relaxed,\n    ).ok();\n\
}\n";
        assert!(check_one_no_inv(src, &order()).is_empty());
    }

    #[test]
    fn c300_skips_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(c: &AtomicU64) {\n        c.load(Ordering::Relaxed);\n    }\n}\n";
        assert!(check_one_no_inv(src, &order()).is_empty());
    }

    #[test]
    fn c400_guard_across_yield_point() {
        let src = format!(
            "{}impl S {{\n    fn f(&self, items: &[u32]) {{\n        let g = self.first.lock();\n        items.par_iter().for_each(|_| {{}});\n    }}\n}}\n",
            clean_decls()
        );
        let v = check_one(&src, &order());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "C400");
        assert!(v[0].message.contains("a.first"), "{}", v[0].message);
        assert!(v[0].message.contains("par_iter"), "{}", v[0].message);
    }

    #[test]
    fn c400_no_guard_is_fine() {
        let src = format!(
            "{}impl S {{\n    fn f(&self, items: &[u32]) {{\n        items.par_iter().for_each(|_| {{}});\n    }}\n}}\n",
            clean_decls()
        );
        assert!(check_one(&src, &order()).is_empty());
    }

    #[test]
    fn rule_prefixed_allowlist_suppresses_and_marks_used() {
        let src = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        let files = vec![("crates/a/src/lib.rs".to_string(), src.to_string())];
        let allow = crate::parse_allowlist("C300 src/lib.rs: fetch_add(1, Ordering::Relaxed)\n");
        let mut used = vec![false; allow.len()];
        let v = check_concurrency(&files, &order(), &allow, &mut used);
        assert!(v.iter().all(|v| v.rule == "C101"), "{v:?}");
        assert_eq!(used, vec![true]);
        // A bare (L2) entry does not suppress C300.
        let bare = crate::parse_allowlist("src/lib.rs: fetch_add(1, Ordering::Relaxed)\n");
        let mut used2 = vec![false; bare.len()];
        let v2 = check_concurrency(&files, &order(), &bare, &mut used2);
        assert_eq!(v2.iter().filter(|v| v.rule == "C300").count(), 1);
        assert_eq!(used2, vec![false]);
    }

    #[test]
    fn sync_crate_and_test_trees_are_out_of_scope() {
        let src = "struct S {\n    ghost: DebugMutex<u32>,\n}\n";
        for path in [
            "crates/sync/src/lib.rs",
            "crates/a/tests/x.rs",
            "crates/a/benches/x.rs",
            "tests/tests/x.rs",
        ] {
            let files = vec![(path.to_string(), src.to_string())];
            let v = check_concurrency(&files, &order(), &[], &mut []);
            // Only the (now stale) order rows fire, never C100.
            assert!(v.iter().all(|v| v.rule == "C101"), "{path}: {v:?}");
        }
    }
}
