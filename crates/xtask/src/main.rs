//! Repo tasks:
//!
//! * `cargo run -p xtask -- lint` — run the repo lints (including the
//!   concurrency audit against `LOCK_ORDER.md`); non-zero exit on any
//!   violation. See `xtask::lint_source` and `xtask::conc` for the rules.
//! * `cargo run -p xtask -- locks` — print the lock inventory next to the
//!   declared hierarchy: rank, id, kind, wrapper, and declaration site.
//! * `cargo run -p xtask -- validate-trace <file.json>` — validate a
//!   Chrome trace-event file exported by `obs::chrome::export` (used by CI
//!   against the `trace_query` example's output).
//! * `cargo run -p xtask -- report <incident.json>` — render the
//!   human-readable view of a slow-query incident report; `--check`
//!   validates the report structurally instead (the CI gate).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("locks") => locks(),
        Some("validate-trace") => match args.get(1) {
            Some(path) => validate_trace(path),
            None => {
                eprintln!("usage: cargo run -p xtask -- validate-trace <file.json>");
                ExitCode::from(2)
            }
        },
        Some("report") => {
            let check = args.iter().any(|a| a == "--check");
            match args.iter().skip(1).find(|a| *a != "--check") {
                Some(path) => report(path, check),
                None => {
                    eprintln!("usage: cargo run -p xtask -- report [--check] <incident.json>");
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- \
                 <lint | locks | validate-trace <file.json> | report [--check] <incident.json>>"
            );
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = xtask::workspace_root();
    let start = std::time::Instant::now();
    match xtask::run(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("lint: clean ({:.0?})", start.elapsed());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!(
                "lint: {} violation(s) ({:.0?})",
                violations.len(),
                start.elapsed()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Print the lock inventory joined with the `LOCK_ORDER.md` hierarchy.
fn locks() -> ExitCode {
    let root = xtask::workspace_root();
    let order_text = match std::fs::read_to_string(root.join("LOCK_ORDER.md")) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("locks: reading LOCK_ORDER.md: {e}");
            return ExitCode::FAILURE;
        }
    };
    let order = match xtask::conc::parse_lock_order(&order_text) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("locks: {e}");
            return ExitCode::FAILURE;
        }
    };
    let files = match xtask::collect_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("locks: {e}");
            return ExitCode::FAILURE;
        }
    };
    let inventory = xtask::conc::lock_inventory(&files);
    println!(
        "{:>5}  {:<20} {:<7} {:<7} declared",
        "rank", "lock id", "kind", "audited"
    );
    for f in &inventory {
        match order.iter().find(|e| e.id == f.id) {
            Some(e) => println!(
                "{:>5}  {:<20} {:<7} {:<7} {}:{}",
                e.rank,
                f.id,
                f.kind.label(),
                if f.debug_wrapper { "yes" } else { "NO" },
                f.file,
                f.line
            ),
            None => println!(
                "{:>5}  {:<20} {:<7} {:<7} {}:{}  (C100: not in LOCK_ORDER.md)",
                "-",
                f.id,
                f.kind.label(),
                if f.debug_wrapper { "yes" } else { "NO" },
                f.file,
                f.line
            ),
        }
    }
    for e in &order {
        if !inventory.iter().any(|f| f.id == e.id) {
            println!(
                "{:>5}  {:<20} {:<7} {:<7} (C101: stale LOCK_ORDER.md row)",
                e.rank,
                e.id,
                e.kind.label(),
                "-"
            );
        }
    }
    ExitCode::SUCCESS
}

fn validate_trace(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate-trace: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match obs::chrome::validate(&text) {
        Ok(summary) => {
            println!("validate-trace: {path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate-trace: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Render (or, with `--check`, just structurally validate) a slow-query
/// incident report produced by the engine's slow-query auto-capture.
fn report(path: &str, check: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("report: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if check {
        obs::incident::check(&text).map(|summary| format!("report: {path}: {summary}"))
    } else {
        obs::incident::summarize(&text)
    };
    match result {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("report: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
