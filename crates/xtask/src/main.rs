//! Repo tasks:
//!
//! * `cargo run -p xtask -- lint` — run the repo lints; non-zero exit on
//!   any violation. See `xtask::lint_source` for the rules.
//! * `cargo run -p xtask -- validate-trace <file.json>` — validate a
//!   Chrome trace-event file exported by `obs::chrome::export` (used by CI
//!   against the `trace_query` example's output).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("validate-trace") => match args.get(1) {
            Some(path) => validate_trace(path),
            None => {
                eprintln!("usage: cargo run -p xtask -- validate-trace <file.json>");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint | validate-trace <file.json>>");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = xtask::workspace_root();
    match xtask::run(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn validate_trace(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate-trace: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match obs::chrome::validate(&text) {
        Ok(summary) => {
            println!("validate-trace: {path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate-trace: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
