//! `cargo run -p xtask -- lint` — run the repo lints; non-zero exit on
//! any violation. See `xtask::lint_source` for the rules.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = xtask::workspace_root();
    match xtask::run(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: {e}");
            ExitCode::FAILURE
        }
    }
}
