//! Property tests for the Substrait boundary: random *valid* plans
//! roundtrip through the wire format and pass the planck verifier;
//! arbitrary and mutated bytes never panic the decoder; and targeted
//! invalid plans are rejected with their documented diagnostic codes.
//!
//! The workspace proptest substitute has no `prop_flat_map`, so plans are
//! generated from a `u64` seed through a deterministic splitmix/xorshift
//! generator — every case is reproducible from the printed seed.

use columnar::agg::AggFunc;
use columnar::kernels::cmp::CmpOp;
use columnar::{DataType, Field, Scalar, Schema};
use proptest::prelude::*;
use substrait_ir::planck::{self, DiagCode};
use substrait_ir::{decode, encode, Expr, Measure, Plan, Rel, SortField};

/// Deterministic xorshift64* over the case seed.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        // xorshift has a fixed point at 0; splitmix the seed first.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Gen((z ^ (z >> 31)) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, pct: usize) -> bool {
        self.below(100) < pct
    }
}

const TYPES: [DataType; 5] = [
    DataType::Int64,
    DataType::Float64,
    DataType::Boolean,
    DataType::Utf8,
    DataType::Date32,
];

const CMP_OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::NotEq,
    CmpOp::Lt,
    CmpOp::LtEq,
    CmpOp::Gt,
    CmpOp::GtEq,
];

fn literal_of(t: DataType, g: &mut Gen) -> Expr {
    Expr::lit(match t {
        DataType::Int64 => Scalar::Int64(g.below(1000) as i64 - 500),
        DataType::Float64 => Scalar::Float64(g.below(1000) as f64 / 8.0),
        DataType::Boolean => Scalar::Boolean(g.chance(50)),
        DataType::Utf8 => Scalar::Utf8(format!("s{}", g.below(16))),
        DataType::Date32 => Scalar::Date32(g.below(20_000) as i32),
    })
}

/// A type-correct boolean predicate over `schema`.
fn predicate_for(schema: &Schema, g: &mut Gen) -> Expr {
    let i = g.below(schema.len());
    let t = schema.field(i).data_type;
    let base = match t {
        DataType::Boolean => Expr::field(i),
        _ => Expr::cmp(
            CMP_OPS[g.below(CMP_OPS.len())],
            Expr::field(i),
            literal_of(t, g),
        ),
    };
    match g.below(4) {
        0 => Expr::Not(Box::new(base)),
        1 => {
            let j = g.below(schema.len());
            let tj = schema.field(j).data_type;
            let other = match tj {
                DataType::Boolean => Expr::field(j),
                _ => Expr::cmp(CmpOp::LtEq, Expr::field(j), literal_of(tj, g)),
            };
            Expr::And(Box::new(base), Box::new(other))
        }
        2 => Expr::IsNotNull(Box::new(base)),
        _ => base,
    }
}

/// Build a random planck-valid plan from one seed. Returns the plan; the
/// roundtrip property asserts `planck::verify` accepts it, so a generator
/// bug fails loudly with the offending seed.
fn gen_valid_plan(seed: u64) -> Plan {
    let mut g = Gen::new(seed);
    let width = 1 + g.below(5);
    let schema = Schema::new(
        (0..width)
            .map(|i| Field::new(format!("f{i}"), TYPES[g.below(TYPES.len())], false))
            .collect(),
    );

    // Read, sometimes through a projection.
    let projection: Option<Vec<usize>> = if g.chance(40) {
        let cols: Vec<usize> = (0..width).filter(|_| g.chance(60)).collect();
        if cols.is_empty() {
            None
        } else {
            Some(cols)
        }
    } else {
        None
    };
    let mut current: Schema = match &projection {
        Some(cols) => Schema::new(cols.iter().map(|&c| schema.field(c).clone()).collect()),
        None => schema.clone(),
    };
    let mut rel = Rel::read("t", schema, projection);

    if g.chance(60) {
        let predicate = predicate_for(&current, &mut g);
        rel = Rel::Filter {
            input: Box::new(rel),
            predicate,
        };
    }

    let aggregated = g.chance(40);
    if aggregated {
        let key = g.below(current.len());
        let group_by = vec![(Expr::field(key), "k".to_string())];
        let numeric: Vec<usize> = (0..current.len())
            .filter(|&i| {
                matches!(
                    current.field(i).data_type,
                    DataType::Int64 | DataType::Float64
                )
            })
            .collect();
        let mut measures = vec![Measure {
            func: AggFunc::Count,
            arg: None,
            name: "n".to_string(),
        }];
        if let Some(&arg) = numeric.first() {
            measures.push(Measure {
                func: if g.chance(50) {
                    AggFunc::Sum
                } else {
                    AggFunc::Avg
                },
                arg: Some(Expr::field(arg)),
                name: "m".to_string(),
            });
        } else {
            let any = g.below(current.len());
            measures.push(Measure {
                func: if g.chance(50) {
                    AggFunc::Min
                } else {
                    AggFunc::Max
                },
                arg: Some(Expr::field(any)),
                name: "m".to_string(),
            });
        }
        let mut fields = vec![Field::new("k", current.field(key).data_type, true)];
        fields.push(Field::new("n", DataType::Int64, true));
        fields.push(Field::new(
            "m",
            match &measures[1] {
                Measure {
                    func: AggFunc::Avg, ..
                } => DataType::Float64,
                Measure {
                    arg: Some(Expr::FieldRef(i)),
                    ..
                } => current.field(*i).data_type,
                _ => DataType::Int64,
            },
            true,
        ));
        current = Schema::new(fields);
        rel = Rel::Aggregate {
            input: Box::new(rel),
            group_by,
            measures,
        };
    }

    // Optional ordering/limit tail: root Sort, Fetch(Sort), or bare Fetch.
    match g.below(4) {
        0 => {
            let keys = vec![SortField {
                expr: Expr::field(g.below(current.len())),
                ascending: g.chance(50),
                nulls_first: g.chance(50),
            }];
            rel = Rel::Sort {
                input: Box::new(rel),
                keys,
            };
            if g.chance(70) {
                rel = Rel::Fetch {
                    input: Box::new(rel),
                    offset: 0,
                    limit: 1 + g.below(100) as u64,
                };
            }
        }
        1 => {
            rel = Rel::Fetch {
                input: Box::new(rel),
                offset: g.below(4) as u64,
                limit: 1 + g.below(100) as u64,
            };
        }
        _ => {}
    }

    Plan::new(rel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Valid plans verify, survive the wire byte-identically, and verify
    /// again after decoding (encode loses nothing planck needs).
    #[test]
    fn roundtrip_preserves_verified_plans(seed in any::<u64>()) {
        let plan = gen_valid_plan(seed);
        let schema = match planck::verify(&plan) {
            Ok(s) => s,
            Err(ds) => panic!("generator produced an invalid plan (seed {seed}): {}", planck::primary(ds)),
        };
        let bytes = encode(&plan);
        let back = decode(&bytes).expect("roundtrip decode");
        prop_assert_eq!(&back, &plan);
        let schema2 = planck::verify(&back).expect("decoded plan verifies");
        prop_assert_eq!(schema2, schema);
    }

    /// The decoder never panics on arbitrary bytes — it returns a
    /// structured error or (vanishingly unlikely) a plan.
    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode(&bytes);
    }

    /// Nor on *near-valid* bytes: a valid encoding with one byte
    /// corrupted, which exercises deep decoder paths garbage never reaches.
    #[test]
    fn decode_never_panics_on_mutated_encodings(seed in any::<u64>()) {
        let plan = gen_valid_plan(seed);
        let mut bytes = encode(&plan);
        let mut g = Gen::new(seed ^ 0xDEAD_BEEF);
        let pos = g.below(bytes.len());
        bytes[pos] ^= 1 << g.below(8);
        if let Ok(back) = decode(&bytes) {
            // A decodable mutant must still be *rejectable*, not a panic.
            let _ = planck::verify_untrusted(&back);
        }
    }

    /// Generated-invalid plans are rejected with the documented codes.
    #[test]
    fn out_of_range_field_is_rejected_with_p200(seed in any::<u64>()) {
        let mut g = Gen::new(seed);
        let width = 1 + g.below(4);
        let schema = Schema::new(
            (0..width).map(|i| Field::new(format!("f{i}"), DataType::Int64, false)).collect(),
        );
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", schema, None)),
            predicate: Expr::cmp(
                CmpOp::Eq,
                Expr::field(width + g.below(10)),
                Expr::lit(Scalar::Int64(0)),
            ),
        });
        let ds = planck::verify(&plan).expect_err("field past arity");
        prop_assert!(ds.iter().any(|d| d.code == DiagCode::FieldOutOfRange), "{ds:?}");
    }

    #[test]
    fn type_mismatched_cmp_is_rejected_with_p201(seed in any::<u64>()) {
        let mut g = Gen::new(seed);
        let schema = Schema::new(vec![Field::new("a", DataType::Int64, false)]);
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", schema, None)),
            predicate: Expr::cmp(
                CMP_OPS[g.below(CMP_OPS.len())],
                Expr::field(0),
                Expr::lit(Scalar::Utf8("not a number".into())),
            ),
        });
        let ds = planck::verify(&plan).expect_err("int64 vs utf8");
        prop_assert!(ds.iter().any(|d| d.code == DiagCode::CmpTypeMismatch), "{ds:?}");
    }

    #[test]
    fn sort_not_under_fetch_is_rejected_with_p307(seed in any::<u64>()) {
        let mut g = Gen::new(seed);
        let schema = Schema::new(vec![Field::new("a", DataType::Int64, false)]);
        // Sort consumed by a Filter (not Fetch, not root) is illegal.
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::Sort {
                input: Box::new(Rel::read("t", schema, None)),
                keys: vec![SortField {
                    expr: Expr::field(0),
                    ascending: g.chance(50),
                    nulls_first: g.chance(50),
                }],
            }),
            predicate: Expr::cmp(CmpOp::Gt, Expr::field(0), Expr::lit(Scalar::Int64(0))),
        });
        let ds = planck::verify(&plan).expect_err("buried sort");
        prop_assert!(ds.iter().any(|d| d.code == DiagCode::SortNotUnderFetch), "{ds:?}");
    }
}
