//! `substrait-ir` — a Substrait-like relational plan intermediate
//! representation.
//!
//! In the paper, Substrait is the engine-neutral contract between the
//! Presto-OCS connector and OCS: the connector serializes the pushed-down
//! operator chain into Substrait IR, ships it over gRPC, and OCS's embedded
//! engine executes it. This crate provides the same contract:
//!
//! * a typed expression tree ([`Expr`]) — field references, literals,
//!   comparisons, arithmetic, boolean logic, `BETWEEN`, casts;
//! * relational operators ([`Rel`]) — `Read` (with projection), `Filter`,
//!   `Project`, `Aggregate`, `Sort`, `Fetch` (limit / top-N when stacked on
//!   `Sort`);
//! * full output-schema inference and [`validate`](Plan::validate);
//! * a compact tag-length binary serialization ([`encode()`](fn@encode) /
//!   [`decode`]) playing the role of protobuf on the wire;
//! * a pretty-printer for plan debugging.
//!
//! # Example
//!
//! ```
//! use substrait_ir::{Expr, Plan, Rel};
//! use columnar::{DataType, Field, Scalar, Schema};
//! use columnar::kernels::cmp::CmpOp;
//!
//! let schema = Schema::new(vec![
//!     Field::new("x", DataType::Float64, false),
//!     Field::new("id", DataType::Int64, false),
//! ]);
//! let plan = Plan::new(Rel::Filter {
//!     input: Box::new(Rel::read("points", schema, None)),
//!     predicate: Expr::cmp(CmpOp::Gt, Expr::field(0), Expr::lit(Scalar::Float64(1.0))),
//! });
//! plan.validate().unwrap();
//!
//! let bytes = substrait_ir::encode(&plan);
//! let back = substrait_ir::decode(&bytes).unwrap();
//! assert_eq!(back, plan);
//! ```

#![warn(missing_docs)]

pub mod encode;
pub mod expr;
pub mod planck;
pub mod rel;

pub use encode::{decode, encode};
pub use expr::{Expr, Measure, SortField};
pub use planck::{DiagCode, Diagnostic};
pub use rel::{Plan, Rel};

use std::fmt;

/// Errors from IR construction, validation or decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// Field reference outside the input schema.
    FieldOutOfRange {
        /// The referenced index.
        index: usize,
        /// Input arity.
        arity: usize,
    },
    /// Types do not line up.
    Type(String),
    /// Structurally invalid plan (e.g. aggregate of an aggregate of a sort).
    Structure(String),
    /// Malformed bytes.
    Corrupt(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::FieldOutOfRange { index, arity } => {
                write!(f, "field reference #{index} out of range for arity {arity}")
            }
            IrError::Type(m) => write!(f, "type error: {m}"),
            IrError::Structure(m) => write!(f, "invalid plan structure: {m}"),
            IrError::Corrupt(m) => write!(f, "corrupt plan bytes: {m}"),
        }
    }
}

impl std::error::Error for IrError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, IrError>;
