//! Relational operators and whole plans.

use columnar::{DataType, Field, Schema};
use std::fmt;

use crate::expr::{Expr, Measure, SortField};
use crate::{IrError, Result};

/// A relational operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Rel {
    /// Scan a named table. The base schema is carried inline (like
    /// Substrait's `ReadRel.base_schema`) so plans are self-contained; an
    /// optional projection restricts and orders the emitted columns.
    Read {
        /// Table name the storage side resolves to objects.
        table: String,
        /// Full schema of the stored table.
        base_schema: Schema,
        /// Emitted column indices (None = all).
        projection: Option<Vec<usize>>,
    },
    /// Keep rows where `predicate` is true.
    Filter {
        /// Input relation.
        input: Box<Rel>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Compute named expressions (replaces the input columns).
    Project {
        /// Input relation.
        input: Box<Rel>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Group-by + measures. Output = group keys then measures.
    Aggregate {
        /// Input relation.
        input: Box<Rel>,
        /// Grouping expressions with output names.
        group_by: Vec<(Expr, String)>,
        /// Aggregate measures.
        measures: Vec<Measure>,
    },
    /// Total order by keys.
    Sort {
        /// Input relation.
        input: Box<Rel>,
        /// Sort keys, major first.
        keys: Vec<SortField>,
    },
    /// Keep `limit` rows after skipping `offset` (stacked directly on a
    /// [`Rel::Sort`] this is the top-N operator).
    Fetch {
        /// Input relation.
        input: Box<Rel>,
        /// Rows to skip.
        offset: u64,
        /// Rows to keep.
        limit: u64,
    },
}

impl Rel {
    /// Shorthand for a `Read`.
    pub fn read(
        table: impl Into<String>,
        base_schema: Schema,
        projection: Option<Vec<usize>>,
    ) -> Rel {
        Rel::Read {
            table: table.into(),
            base_schema,
            projection,
        }
    }

    /// The input relation, if any.
    pub fn input(&self) -> Option<&Rel> {
        match self {
            Rel::Read { .. } => None,
            Rel::Filter { input, .. }
            | Rel::Project { input, .. }
            | Rel::Aggregate { input, .. }
            | Rel::Sort { input, .. }
            | Rel::Fetch { input, .. } => Some(input),
        }
    }

    /// Infer the output schema (validates expression typing on the way).
    pub fn output_schema(&self) -> Result<Schema> {
        match self {
            Rel::Read {
                base_schema,
                projection,
                ..
            } => match projection {
                None => Ok(base_schema.clone()),
                Some(idx) => base_schema
                    .project(idx)
                    .map_err(|e| IrError::Structure(e.to_string())),
            },
            Rel::Filter { input, predicate } => {
                let schema = input.output_schema()?;
                let t = predicate.output_type(&schema)?;
                if t != DataType::Boolean {
                    return Err(IrError::Type(format!("filter predicate is {t}")));
                }
                Ok(schema)
            }
            Rel::Project { input, exprs } => {
                let schema = input.output_schema()?;
                if exprs.is_empty() {
                    return Err(IrError::Structure("empty projection".into()));
                }
                let fields = exprs
                    .iter()
                    .map(|(e, name)| Ok(Field::new(name.clone(), e.output_type(&schema)?, true)))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Schema::new(fields))
            }
            Rel::Aggregate {
                input,
                group_by,
                measures,
            } => {
                let schema = input.output_schema()?;
                if measures.is_empty() && group_by.is_empty() {
                    return Err(IrError::Structure(
                        "aggregate with no keys and no measures".into(),
                    ));
                }
                let mut fields = Vec::with_capacity(group_by.len() + measures.len());
                for (e, name) in group_by {
                    fields.push(Field::new(name.clone(), e.output_type(&schema)?, true));
                }
                for m in measures {
                    let input_type = m.arg.as_ref().map(|e| e.output_type(&schema)).transpose()?;
                    let out = m
                        .func
                        .result_type(input_type)
                        .map_err(|e| IrError::Type(e.to_string()))?;
                    fields.push(Field::new(m.name.clone(), out, true));
                }
                Ok(Schema::new(fields))
            }
            Rel::Sort { input, keys } => {
                let schema = input.output_schema()?;
                if keys.is_empty() {
                    return Err(IrError::Structure("sort with no keys".into()));
                }
                for k in keys {
                    k.expr.output_type(&schema)?;
                }
                Ok(schema)
            }
            Rel::Fetch { input, .. } => input.output_schema(),
        }
    }

    /// Depth-first count of operators (for plan-size metrics).
    pub fn operator_count(&self) -> usize {
        1 + self.input().map(|r| r.operator_count()).unwrap_or(0)
    }

    /// Name of this operator for display / metrics.
    pub fn name(&self) -> &'static str {
        match self {
            Rel::Read { .. } => "Read",
            Rel::Filter { .. } => "Filter",
            Rel::Project { .. } => "Project",
            Rel::Aggregate { .. } => "Aggregate",
            Rel::Sort { .. } => "Sort",
            Rel::Fetch { .. } => "Fetch",
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            Rel::Read {
                table, projection, ..
            } => writeln!(
                f,
                "{pad}Read[{table}]{}",
                match projection {
                    Some(p) => format!(" projection={p:?}"),
                    None => String::new(),
                }
            ),
            Rel::Filter { input, predicate } => {
                writeln!(f, "{pad}Filter[{predicate}]")?;
                input.fmt_indent(f, depth + 1)
            }
            Rel::Project { input, exprs } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{n}={e}")).collect();
                writeln!(f, "{pad}Project[{}]", cols.join(", "))?;
                input.fmt_indent(f, depth + 1)
            }
            Rel::Aggregate {
                input,
                group_by,
                measures,
            } => {
                let keys: Vec<String> = group_by.iter().map(|(e, n)| format!("{n}={e}")).collect();
                let ms: Vec<String> = measures
                    .iter()
                    .map(|m| {
                        format!(
                            "{}={}({})",
                            m.name,
                            m.func.sql(),
                            m.arg
                                .as_ref()
                                .map(|a| a.to_string())
                                .unwrap_or_else(|| "*".into())
                        )
                    })
                    .collect();
                writeln!(
                    f,
                    "{pad}Aggregate[keys=({}) measures=({})]",
                    keys.join(", "),
                    ms.join(", ")
                )?;
                input.fmt_indent(f, depth + 1)
            }
            Rel::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{} {}", k.expr, if k.ascending { "ASC" } else { "DESC" }))
                    .collect();
                writeln!(f, "{pad}Sort[{}]", ks.join(", "))?;
                input.fmt_indent(f, depth + 1)
            }
            Rel::Fetch {
                input,
                offset,
                limit,
            } => {
                writeln!(f, "{pad}Fetch[offset={offset} limit={limit}]")?;
                input.fmt_indent(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

/// A complete plan: a version stamp plus the root relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// IR version (for wire compatibility checks).
    pub version: u32,
    /// Root of the operator tree.
    pub root: Rel,
}

/// Current IR version.
pub const IR_VERSION: u32 = 1;

impl Plan {
    /// Wrap a relation tree as a plan.
    pub fn new(root: Rel) -> Plan {
        Plan {
            version: IR_VERSION,
            root,
        }
    }

    /// Validate the whole tree: schema inference succeeds and the structure
    /// is one the embedded engine supports (single `Read` leaf).
    pub fn validate(&self) -> Result<Schema> {
        if self.version != IR_VERSION {
            return Err(IrError::Structure(format!(
                "unsupported IR version {}",
                self.version
            )));
        }
        // Exactly one leaf, and it must be a Read.
        let mut cur = &self.root;
        while let Some(next) = cur.input() {
            cur = next;
        }
        if !matches!(cur, Rel::Read { .. }) {
            return Err(IrError::Structure("leaf operator must be Read".into()));
        }
        self.root.output_schema()
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::agg::AggFunc;
    use columnar::kernels::cmp::CmpOp;
    use columnar::Scalar;

    fn base() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("x", DataType::Float64, false),
            Field::new("tag", DataType::Utf8, false),
        ])
    }

    #[test]
    fn read_schema_with_projection() {
        let r = Rel::read("t", base(), Some(vec![2, 0]));
        let s = r.output_schema().unwrap();
        assert_eq!(s.names(), vec!["tag", "id"]);
        let r = Rel::read("t", base(), None);
        assert_eq!(r.output_schema().unwrap().len(), 3);
    }

    #[test]
    fn filter_requires_boolean() {
        let bad = Rel::Filter {
            input: Box::new(Rel::read("t", base(), None)),
            predicate: Expr::field(0),
        };
        assert!(bad.output_schema().is_err());
        let good = Rel::Filter {
            input: Box::new(Rel::read("t", base(), None)),
            predicate: Expr::cmp(CmpOp::Gt, Expr::field(1), Expr::lit(Scalar::Float64(0.5))),
        };
        assert_eq!(good.output_schema().unwrap().len(), 3);
    }

    #[test]
    fn aggregate_schema() {
        let agg = Rel::Aggregate {
            input: Box::new(Rel::read("t", base(), None)),
            group_by: vec![(Expr::field(2), "tag".into())],
            measures: vec![
                Measure {
                    func: AggFunc::Avg,
                    arg: Some(Expr::field(1)),
                    name: "avg_x".into(),
                },
                Measure {
                    func: AggFunc::Count,
                    arg: None,
                    name: "n".into(),
                },
            ],
        };
        let s = agg.output_schema().unwrap();
        assert_eq!(s.names(), vec!["tag", "avg_x", "n"]);
        assert_eq!(s.field(1).data_type, DataType::Float64);
        assert_eq!(s.field(2).data_type, DataType::Int64);
    }

    #[test]
    fn structural_validation() {
        // Empty project / sort / aggregate rejected.
        let empty_proj = Rel::Project {
            input: Box::new(Rel::read("t", base(), None)),
            exprs: vec![],
        };
        assert!(empty_proj.output_schema().is_err());
        let empty_sort = Rel::Sort {
            input: Box::new(Rel::read("t", base(), None)),
            keys: vec![],
        };
        assert!(empty_sort.output_schema().is_err());
        let plan = Plan::new(Rel::read("t", base(), None));
        assert!(plan.validate().is_ok());
        let mut bad = plan.clone();
        bad.version = 99;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn laghos_shaped_plan_validates() {
        // SELECT min(id), avg(x) ... WHERE x BETWEEN .. GROUP BY id ORDER BY e LIMIT 100
        let plan = Plan::new(Rel::Fetch {
            input: Box::new(Rel::Sort {
                input: Box::new(Rel::Aggregate {
                    input: Box::new(Rel::Filter {
                        input: Box::new(Rel::read("laghos", base(), None)),
                        predicate: Expr::Between {
                            expr: Box::new(Expr::field(1)),
                            lo: Box::new(Expr::lit(Scalar::Float64(0.8))),
                            hi: Box::new(Expr::lit(Scalar::Float64(3.2))),
                        },
                    }),
                    group_by: vec![(Expr::field(0), "id".into())],
                    measures: vec![Measure {
                        func: AggFunc::Avg,
                        arg: Some(Expr::field(1)),
                        name: "e".into(),
                    }],
                }),
                keys: vec![SortField {
                    expr: Expr::field(1),
                    ascending: true,
                    nulls_first: true,
                }],
            }),
            offset: 0,
            limit: 100,
        });
        let s = plan.validate().unwrap();
        assert_eq!(s.names(), vec!["id", "e"]);
        assert_eq!(plan.root.operator_count(), 5);
        // Pretty printer shows the chain.
        let text = plan.to_string();
        assert!(text.contains("Fetch"));
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Read[laghos]"));
    }
}
