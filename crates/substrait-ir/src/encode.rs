//! Binary serialization of plans — the wire format crossing the
//! connector → OCS gRPC boundary (protobuf's role in the paper).
//!
//! Tag-length-value with varint integers; every node is
//! `[tag u8][payload…]`. A 4-byte magic and version guard the frame.

use bytes::BufMut;
use columnar::agg::AggFunc;
use columnar::kernels::arith::ArithOp;
use columnar::kernels::cmp::CmpOp;
use columnar::{DataType, Field, Scalar, Schema};

use crate::expr::{Expr, Measure, SortField};
use crate::rel::{Plan, Rel};
use crate::{IrError, Result};

const MAGIC: &[u8; 4] = b"SIR1";

// Expression tags.
const E_FIELD: u8 = 1;
const E_LIT: u8 = 2;
const E_CMP: u8 = 3;
const E_ARITH: u8 = 4;
const E_AND: u8 = 5;
const E_OR: u8 = 6;
const E_NOT: u8 = 7;
const E_BETWEEN: u8 = 8;
const E_CAST: u8 = 9;
const E_NEG: u8 = 10;
const E_ISNULL: u8 = 11;
const E_ISNOTNULL: u8 = 12;

// Relation tags.
const R_READ: u8 = 1;
const R_FILTER: u8 = 2;
const R_PROJECT: u8 = 3;
const R_AGG: u8 = 4;
const R_SORT: u8 = 5;
const R_FETCH: u8 = 6;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.put_slice(s.as_bytes());
}

fn put_scalar(out: &mut Vec<u8>, s: &Scalar) {
    match s {
        Scalar::Null => out.put_u8(255),
        Scalar::Int64(v) => {
            out.put_u8(DataType::Int64.tag());
            out.put_i64_le(*v);
        }
        Scalar::Float64(v) => {
            out.put_u8(DataType::Float64.tag());
            out.put_f64_le(*v);
        }
        Scalar::Boolean(v) => {
            out.put_u8(DataType::Boolean.tag());
            out.put_u8(*v as u8);
        }
        Scalar::Utf8(v) => {
            out.put_u8(DataType::Utf8.tag());
            put_str(out, v);
        }
        Scalar::Date32(v) => {
            out.put_u8(DataType::Date32.tag());
            out.put_i32_le(*v);
        }
    }
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::NotEq => 1,
        CmpOp::Lt => 2,
        CmpOp::LtEq => 3,
        CmpOp::Gt => 4,
        CmpOp::GtEq => 5,
    }
}

fn arith_tag(op: ArithOp) -> u8 {
    match op {
        ArithOp::Add => 0,
        ArithOp::Sub => 1,
        ArithOp::Mul => 2,
        ArithOp::Div => 3,
        ArithOp::Mod => 4,
    }
}

fn agg_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
    }
}

fn put_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::FieldRef(i) => {
            out.put_u8(E_FIELD);
            put_varint(out, *i as u64);
        }
        Expr::Literal(s) => {
            out.put_u8(E_LIT);
            put_scalar(out, s);
        }
        Expr::Cmp { op, left, right } => {
            out.put_u8(E_CMP);
            out.put_u8(cmp_tag(*op));
            put_expr(out, left);
            put_expr(out, right);
        }
        Expr::Arith { op, left, right } => {
            out.put_u8(E_ARITH);
            out.put_u8(arith_tag(*op));
            put_expr(out, left);
            put_expr(out, right);
        }
        Expr::And(a, b) => {
            out.put_u8(E_AND);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Or(a, b) => {
            out.put_u8(E_OR);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Not(x) => {
            out.put_u8(E_NOT);
            put_expr(out, x);
        }
        Expr::Between { expr, lo, hi } => {
            out.put_u8(E_BETWEEN);
            put_expr(out, expr);
            put_expr(out, lo);
            put_expr(out, hi);
        }
        Expr::Cast { expr, to } => {
            out.put_u8(E_CAST);
            out.put_u8(to.tag());
            put_expr(out, expr);
        }
        Expr::Negate(x) => {
            out.put_u8(E_NEG);
            put_expr(out, x);
        }
        Expr::IsNull(x) => {
            out.put_u8(E_ISNULL);
            put_expr(out, x);
        }
        Expr::IsNotNull(x) => {
            out.put_u8(E_ISNOTNULL);
            put_expr(out, x);
        }
    }
}

fn put_schema(out: &mut Vec<u8>, s: &Schema) {
    put_varint(out, s.len() as u64);
    for f in s.fields() {
        put_str(out, &f.name);
        out.put_u8(f.data_type.tag());
        out.put_u8(f.nullable as u8);
    }
}

fn put_rel(out: &mut Vec<u8>, r: &Rel) {
    match r {
        Rel::Read {
            table,
            base_schema,
            projection,
        } => {
            out.put_u8(R_READ);
            put_str(out, table);
            put_schema(out, base_schema);
            match projection {
                None => out.put_u8(0),
                Some(p) => {
                    out.put_u8(1);
                    put_varint(out, p.len() as u64);
                    for &i in p {
                        put_varint(out, i as u64);
                    }
                }
            }
        }
        Rel::Filter { input, predicate } => {
            out.put_u8(R_FILTER);
            put_expr(out, predicate);
            put_rel(out, input);
        }
        Rel::Project { input, exprs } => {
            out.put_u8(R_PROJECT);
            put_varint(out, exprs.len() as u64);
            for (e, name) in exprs {
                put_str(out, name);
                put_expr(out, e);
            }
            put_rel(out, input);
        }
        Rel::Aggregate {
            input,
            group_by,
            measures,
        } => {
            out.put_u8(R_AGG);
            put_varint(out, group_by.len() as u64);
            for (e, name) in group_by {
                put_str(out, name);
                put_expr(out, e);
            }
            put_varint(out, measures.len() as u64);
            for m in measures {
                out.put_u8(agg_tag(m.func));
                put_str(out, &m.name);
                match &m.arg {
                    None => out.put_u8(0),
                    Some(e) => {
                        out.put_u8(1);
                        put_expr(out, e);
                    }
                }
            }
            put_rel(out, input);
        }
        Rel::Sort { input, keys } => {
            out.put_u8(R_SORT);
            put_varint(out, keys.len() as u64);
            for k in keys {
                out.put_u8(k.ascending as u8);
                out.put_u8(k.nulls_first as u8);
                put_expr(out, &k.expr);
            }
            put_rel(out, input);
        }
        Rel::Fetch {
            input,
            offset,
            limit,
        } => {
            out.put_u8(R_FETCH);
            put_varint(out, *offset);
            put_varint(out, *limit);
            put_rel(out, input);
        }
    }
}

/// Serialize a plan.
pub fn encode(plan: &Plan) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(MAGIC);
    put_varint(&mut out, plan.version as u64);
    put_rel(&mut out, &plan.root);
    out
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Dec<'a> {
    fn u8(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| IrError::Corrupt("unexpected end".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(IrError::Corrupt("unexpected end".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(IrError::Corrupt("varint overflow".into()));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a fixed-width little-endian payload without panicking paths:
    /// `bytes` has already bounds-checked, so the array conversion is by
    /// construction rather than `expect`.
    fn fixed<const N: usize>(&mut self) -> Result<[u8; N]> {
        let raw = self.bytes(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(raw);
        Ok(out)
    }

    /// Read a sequence-length prefix and reject it *before allocating*
    /// when the count exceeds `cap` or could not possibly fit in the
    /// remaining buffer (every element costs at least `min_item_bytes`).
    /// A truncated or hostile frame therefore errors instead of driving
    /// a huge `Vec::with_capacity`.
    fn seq_len(&mut self, cap: usize, min_item_bytes: usize, what: &str) -> Result<usize> {
        let n = self.varint()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n > cap || n.saturating_mul(min_item_bytes) > remaining {
            return Err(IrError::Corrupt(format!(
                "implausible {what} length {n} for {remaining} remaining bytes"
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String> {
        let n = self.seq_len(1 << 20, 1, "string")?;
        let raw = self.bytes(n)?;
        std::str::from_utf8(raw)
            .map(|s| s.to_string())
            .map_err(|e| IrError::Corrupt(format!("invalid utf8: {e}")))
    }

    fn scalar(&mut self) -> Result<Scalar> {
        let tag = self.u8()?;
        if tag == 255 {
            return Ok(Scalar::Null);
        }
        let dt = DataType::from_tag(tag).map_err(|e| IrError::Corrupt(e.to_string()))?;
        Ok(match dt {
            DataType::Int64 => Scalar::Int64(i64::from_le_bytes(self.fixed::<8>()?)),
            DataType::Float64 => Scalar::Float64(f64::from_le_bytes(self.fixed::<8>()?)),
            DataType::Boolean => Scalar::Boolean(self.u8()? == 1),
            DataType::Utf8 => Scalar::Utf8(self.str()?),
            DataType::Date32 => Scalar::Date32(i32::from_le_bytes(self.fixed::<4>()?)),
        })
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > 128 {
            return Err(IrError::Corrupt("expression/plan nesting too deep".into()));
        }
        Ok(())
    }

    fn expr(&mut self) -> Result<Expr> {
        self.enter()?;
        let tag = self.u8()?;
        let e = match tag {
            E_FIELD => Expr::FieldRef(self.varint()? as usize),
            E_LIT => Expr::Literal(self.scalar()?),
            E_CMP => {
                let op = match self.u8()? {
                    0 => CmpOp::Eq,
                    1 => CmpOp::NotEq,
                    2 => CmpOp::Lt,
                    3 => CmpOp::LtEq,
                    4 => CmpOp::Gt,
                    5 => CmpOp::GtEq,
                    t => return Err(IrError::Corrupt(format!("bad cmp op {t}"))),
                };
                Expr::Cmp {
                    op,
                    left: Box::new(self.expr()?),
                    right: Box::new(self.expr()?),
                }
            }
            E_ARITH => {
                let op = match self.u8()? {
                    0 => ArithOp::Add,
                    1 => ArithOp::Sub,
                    2 => ArithOp::Mul,
                    3 => ArithOp::Div,
                    4 => ArithOp::Mod,
                    t => return Err(IrError::Corrupt(format!("bad arith op {t}"))),
                };
                Expr::Arith {
                    op,
                    left: Box::new(self.expr()?),
                    right: Box::new(self.expr()?),
                }
            }
            E_AND => Expr::And(Box::new(self.expr()?), Box::new(self.expr()?)),
            E_OR => Expr::Or(Box::new(self.expr()?), Box::new(self.expr()?)),
            E_NOT => Expr::Not(Box::new(self.expr()?)),
            E_BETWEEN => Expr::Between {
                expr: Box::new(self.expr()?),
                lo: Box::new(self.expr()?),
                hi: Box::new(self.expr()?),
            },
            E_CAST => {
                let to =
                    DataType::from_tag(self.u8()?).map_err(|e| IrError::Corrupt(e.to_string()))?;
                Expr::Cast {
                    expr: Box::new(self.expr()?),
                    to,
                }
            }
            E_NEG => Expr::Negate(Box::new(self.expr()?)),
            E_ISNULL => Expr::IsNull(Box::new(self.expr()?)),
            E_ISNOTNULL => Expr::IsNotNull(Box::new(self.expr()?)),
            t => return Err(IrError::Corrupt(format!("bad expr tag {t}"))),
        };
        self.depth -= 1;
        Ok(e)
    }

    fn schema(&mut self) -> Result<Schema> {
        // Every field costs at least a name-length varint, a type tag and
        // a nullability byte.
        let n = self.seq_len(65_536, 3, "schema")?;
        let mut fields = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.str()?;
            let dt = DataType::from_tag(self.u8()?).map_err(|e| IrError::Corrupt(e.to_string()))?;
            let nullable = self.u8()? == 1;
            fields.push(Field::new(name, dt, nullable));
        }
        Ok(Schema::new(fields))
    }

    fn rel(&mut self) -> Result<Rel> {
        self.enter()?;
        let tag = self.u8()?;
        let r = match tag {
            R_READ => {
                let table = self.str()?;
                let base_schema = self.schema()?;
                let projection = if self.u8()? == 1 {
                    let n = self.seq_len(65_536, 1, "projection")?;
                    let mut p = Vec::with_capacity(n);
                    for _ in 0..n {
                        p.push(self.varint()? as usize);
                    }
                    Some(p)
                } else {
                    None
                };
                Rel::Read {
                    table,
                    base_schema,
                    projection,
                }
            }
            R_FILTER => {
                let predicate = self.expr()?;
                Rel::Filter {
                    input: Box::new(self.rel()?),
                    predicate,
                }
            }
            R_PROJECT => {
                // Each column costs at least a name-length varint and an
                // expression tag.
                let n = self.seq_len(65_536, 2, "projection list")?;
                let mut exprs = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = self.str()?;
                    exprs.push((self.expr()?, name));
                }
                Rel::Project {
                    input: Box::new(self.rel()?),
                    exprs,
                }
            }
            R_AGG => {
                let ng = self.seq_len(65_536, 2, "group-by list")?;
                let mut group_by = Vec::with_capacity(ng);
                for _ in 0..ng {
                    let name = self.str()?;
                    group_by.push((self.expr()?, name));
                }
                // Each measure costs at least a function tag, a name-length
                // varint and an argument-presence flag.
                let nm = self.seq_len(65_536, 3, "measure list")?;
                let mut measures = Vec::with_capacity(nm);
                for _ in 0..nm {
                    let func = match self.u8()? {
                        0 => AggFunc::Count,
                        1 => AggFunc::Sum,
                        2 => AggFunc::Min,
                        3 => AggFunc::Max,
                        4 => AggFunc::Avg,
                        t => return Err(IrError::Corrupt(format!("bad agg tag {t}"))),
                    };
                    let name = self.str()?;
                    let arg = if self.u8()? == 1 {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    measures.push(Measure { func, arg, name });
                }
                Rel::Aggregate {
                    input: Box::new(self.rel()?),
                    group_by,
                    measures,
                }
            }
            R_SORT => {
                // Each key costs at least two flag bytes and an expr tag.
                let n = self.seq_len(65_536, 3, "sort-key list")?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    let ascending = self.u8()? == 1;
                    let nulls_first = self.u8()? == 1;
                    keys.push(SortField {
                        expr: self.expr()?,
                        ascending,
                        nulls_first,
                    });
                }
                Rel::Sort {
                    input: Box::new(self.rel()?),
                    keys,
                }
            }
            R_FETCH => {
                let offset = self.varint()?;
                let limit = self.varint()?;
                Rel::Fetch {
                    input: Box::new(self.rel()?),
                    offset,
                    limit,
                }
            }
            t => return Err(IrError::Corrupt(format!("bad rel tag {t}"))),
        };
        self.depth -= 1;
        Ok(r)
    }
}

/// Deserialize a plan produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Plan> {
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(IrError::Corrupt("missing IR magic".into()));
    }
    let mut d = Dec {
        buf: bytes,
        pos: 4,
        depth: 0,
    };
    let version = d.varint()? as u32;
    let root = d.rel()?;
    if d.pos != bytes.len() {
        return Err(IrError::Corrupt(format!(
            "{} trailing bytes",
            bytes.len() - d.pos
        )));
    }
    Ok(Plan { version, root })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::IR_VERSION;

    fn sample_plan() -> Plan {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("x", DataType::Float64, true),
            Field::new("tag", DataType::Utf8, false),
            Field::new("d", DataType::Date32, false),
        ]);
        Plan::new(Rel::Fetch {
            offset: 0,
            limit: 100,
            input: Box::new(Rel::Sort {
                keys: vec![SortField {
                    expr: Expr::field(1),
                    ascending: false,
                    nulls_first: false,
                }],
                input: Box::new(Rel::Aggregate {
                    group_by: vec![(Expr::field(2), "tag".into())],
                    measures: vec![
                        Measure {
                            func: AggFunc::Sum,
                            arg: Some(Expr::arith(
                                ArithOp::Mul,
                                Expr::field(1),
                                Expr::lit(Scalar::Float64(2.0)),
                            )),
                            name: "s".into(),
                        },
                        Measure {
                            func: AggFunc::Count,
                            arg: None,
                            name: "n".into(),
                        },
                    ],
                    input: Box::new(Rel::Project {
                        exprs: vec![
                            (Expr::field(0), "id".into()),
                            (
                                Expr::Cast {
                                    expr: Box::new(Expr::field(3)),
                                    to: DataType::Int64,
                                },
                                "days".into(),
                            ),
                            (Expr::field(1), "x".into()),
                            (Expr::field(2), "tag".into()),
                        ],
                        input: Box::new(Rel::Filter {
                            predicate: Expr::And(
                                Box::new(Expr::Between {
                                    expr: Box::new(Expr::field(1)),
                                    lo: Box::new(Expr::lit(Scalar::Float64(0.8))),
                                    hi: Box::new(Expr::lit(Scalar::Float64(3.2))),
                                }),
                                Box::new(Expr::Not(Box::new(Expr::IsNull(Box::new(Expr::field(
                                    0,
                                )))))),
                            ),
                            input: Box::new(Rel::read("t", schema, Some(vec![0, 1, 2, 3]))),
                        }),
                    }),
                }),
            }),
        })
    }

    #[test]
    fn roundtrip_full_plan() {
        let plan = sample_plan();
        let bytes = encode(&plan);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.version, IR_VERSION);
    }

    #[test]
    fn roundtrip_every_scalar_type() {
        for s in [
            Scalar::Null,
            Scalar::Int64(i64::MIN),
            Scalar::Float64(-0.0),
            Scalar::Boolean(false),
            Scalar::Utf8("日本語".into()),
            Scalar::Date32(-1),
        ] {
            let plan = Plan::new(Rel::Filter {
                predicate: Expr::cmp(CmpOp::Eq, Expr::field(0), Expr::lit(s)),
                input: Box::new(Rel::read(
                    "t",
                    Schema::new(vec![Field::new("a", DataType::Int64, true)]),
                    None,
                )),
            });
            let back = decode(&encode(&plan)).unwrap();
            assert_eq!(back, plan);
        }
    }

    #[test]
    fn corruption_rejected() {
        let bytes = encode(&sample_plan());
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode(&[]).is_err());
        assert!(decode(b"XXXX").is_err());
        let mut bad = bytes.clone();
        bad[4] = 200; // version varint fine, but rel tag will break later or now
        let _ = decode(&bad); // must not panic
        let mut bad = bytes;
        bad.push(0);
        assert!(decode(&bad).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn deep_nesting_bounded() {
        // Build a 200-deep NOT chain and check decode rejects (encode is fine).
        let mut e = Expr::lit(Scalar::Boolean(true));
        for _ in 0..200 {
            e = Expr::Not(Box::new(e));
        }
        let plan = Plan::new(Rel::Filter {
            predicate: e,
            input: Box::new(Rel::read(
                "t",
                Schema::new(vec![Field::new("a", DataType::Int64, true)]),
                None,
            )),
        });
        let bytes = encode(&plan);
        assert!(matches!(decode(&bytes), Err(IrError::Corrupt(_))));
    }

    #[test]
    fn wire_size_is_compact() {
        let bytes = encode(&sample_plan());
        assert!(
            bytes.len() < 400,
            "plan wire size {} too large",
            bytes.len()
        );
    }
}
