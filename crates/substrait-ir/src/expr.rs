//! Typed expression trees.

use columnar::agg::AggFunc;
use columnar::kernels::arith::ArithOp;
use columnar::kernels::cmp::CmpOp;
use columnar::{DataType, Scalar, Schema};
use std::fmt;

use crate::{IrError, Result};

/// A scalar expression evaluated row-wise against an input schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to input column `i`.
    FieldRef(usize),
    /// A literal value.
    Literal(Scalar),
    /// Comparison producing Boolean.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical AND (Kleene).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (Kleene).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// `expr BETWEEN lo AND hi` (inclusive).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        lo: Box<Expr>,
        /// Upper bound.
        hi: Box<Expr>,
    },
    /// Type cast.
    Cast {
        /// Input expression.
        expr: Box<Expr>,
        /// Target type.
        to: DataType,
    },
    /// Unary minus.
    Negate(Box<Expr>),
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
    /// `expr IS NOT NULL`.
    IsNotNull(Box<Expr>),
}

impl Expr {
    /// Shorthand: field reference.
    pub fn field(i: usize) -> Expr {
        Expr::FieldRef(i)
    }

    /// Shorthand: literal.
    pub fn lit(s: Scalar) -> Expr {
        Expr::Literal(s)
    }

    /// Shorthand: comparison.
    pub fn cmp(op: CmpOp, left: Expr, right: Expr) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Shorthand: arithmetic.
    pub fn arith(op: ArithOp, left: Expr, right: Expr) -> Expr {
        Expr::Arith {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Shorthand: conjunction of many terms (`true` literal for empty).
    pub fn and_all(terms: impl IntoIterator<Item = Expr>) -> Expr {
        let mut iter = terms.into_iter();
        match iter.next() {
            None => Expr::Literal(Scalar::Boolean(true)),
            Some(first) => iter.fold(first, |acc, t| Expr::And(Box::new(acc), Box::new(t))),
        }
    }

    /// The expression's output type against `input`, or an error if ill-typed.
    pub fn output_type(&self, input: &Schema) -> Result<DataType> {
        match self {
            Expr::FieldRef(i) => {
                if *i >= input.len() {
                    Err(IrError::FieldOutOfRange {
                        index: *i,
                        arity: input.len(),
                    })
                } else {
                    Ok(input.field(*i).data_type)
                }
            }
            Expr::Literal(s) => s
                .data_type()
                .ok_or_else(|| IrError::Type("untyped NULL literal; wrap in Cast".into())),
            Expr::Cmp { left, right, .. } => {
                let (l, r) = (left.output_type(input)?, right.output_type(input)?);
                let compatible = l == r || (l.is_numeric() && r.is_numeric());
                if !compatible {
                    return Err(IrError::Type(format!("cannot compare {l} with {r}")));
                }
                Ok(DataType::Boolean)
            }
            Expr::Arith { op, left, right } => {
                let (l, r) = (left.output_type(input)?, right.output_type(input)?);
                op.result_type(l, r)
                    .map_err(|e| IrError::Type(e.to_string()))
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                for (side, e) in [("left", a), ("right", b)] {
                    let t = e.output_type(input)?;
                    if t != DataType::Boolean {
                        return Err(IrError::Type(format!(
                            "{side} operand of boolean op is {t}"
                        )));
                    }
                }
                Ok(DataType::Boolean)
            }
            Expr::Not(e) => {
                let t = e.output_type(input)?;
                if t != DataType::Boolean {
                    return Err(IrError::Type(format!("NOT of {t}")));
                }
                Ok(DataType::Boolean)
            }
            Expr::Between { expr, lo, hi } => {
                let t = expr.output_type(input)?;
                for b in [lo, hi] {
                    let bt = b.output_type(input)?;
                    let ok = bt == t || (bt.is_numeric() && t.is_numeric());
                    if !ok {
                        return Err(IrError::Type(format!("BETWEEN bound {bt} vs {t}")));
                    }
                }
                Ok(DataType::Boolean)
            }
            Expr::Cast { expr, to } => {
                // CAST(NULL AS t) is how untyped NULLs acquire a type.
                if !matches!(expr.as_ref(), Expr::Literal(Scalar::Null)) {
                    expr.output_type(input)?;
                }
                Ok(*to)
            }
            Expr::Negate(e) => {
                let t = e.output_type(input)?;
                if !matches!(t, DataType::Int64 | DataType::Float64) {
                    return Err(IrError::Type(format!("negate of {t}")));
                }
                Ok(t)
            }
            Expr::IsNull(e) | Expr::IsNotNull(e) => {
                e.output_type(input)?;
                Ok(DataType::Boolean)
            }
        }
    }

    /// All field indices referenced by this expression.
    pub fn referenced_fields(&self, out: &mut Vec<usize>) {
        match self {
            Expr::FieldRef(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Literal(_) => {}
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.referenced_fields(out);
                right.referenced_fields(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.referenced_fields(out);
                b.referenced_fields(out);
            }
            Expr::Not(e)
            | Expr::Cast { expr: e, .. }
            | Expr::Negate(e)
            | Expr::IsNull(e)
            | Expr::IsNotNull(e) => e.referenced_fields(out),
            Expr::Between { expr, lo, hi } => {
                expr.referenced_fields(out);
                lo.referenced_fields(out);
                hi.referenced_fields(out);
            }
        }
    }

    /// Rewrite every field reference through `map` (old index → new index).
    /// Used when folding operators into a projected scan.
    pub fn remap_fields(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::FieldRef(i) => Expr::FieldRef(map(*i)),
            Expr::Literal(s) => Expr::Literal(s.clone()),
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(left.remap_fields(map)),
                right: Box::new(right.remap_fields(map)),
            },
            Expr::Arith { op, left, right } => Expr::Arith {
                op: *op,
                left: Box::new(left.remap_fields(map)),
                right: Box::new(right.remap_fields(map)),
            },
            Expr::And(a, b) => {
                Expr::And(Box::new(a.remap_fields(map)), Box::new(b.remap_fields(map)))
            }
            Expr::Or(a, b) => {
                Expr::Or(Box::new(a.remap_fields(map)), Box::new(b.remap_fields(map)))
            }
            Expr::Not(e) => Expr::Not(Box::new(e.remap_fields(map))),
            Expr::Between { expr, lo, hi } => Expr::Between {
                expr: Box::new(expr.remap_fields(map)),
                lo: Box::new(lo.remap_fields(map)),
                hi: Box::new(hi.remap_fields(map)),
            },
            Expr::Cast { expr, to } => Expr::Cast {
                expr: Box::new(expr.remap_fields(map)),
                to: *to,
            },
            Expr::Negate(e) => Expr::Negate(Box::new(e.remap_fields(map))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.remap_fields(map))),
            Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(e.remap_fields(map))),
        }
    }

    /// A rough cost weight: how many primitive operations one row costs.
    /// Feeds the connector's computational-complexity threshold.
    pub fn op_weight(&self) -> u32 {
        match self {
            Expr::FieldRef(_) | Expr::Literal(_) => 0,
            Expr::Cmp { left, right, .. } => 1 + left.op_weight() + right.op_weight(),
            Expr::Arith { op, left, right } => {
                // Division/modulo are several times pricier than add/mul.
                let base = match op {
                    ArithOp::Div | ArithOp::Mod => 4,
                    _ => 1,
                };
                base + left.op_weight() + right.op_weight()
            }
            Expr::And(a, b) | Expr::Or(a, b) => 1 + a.op_weight() + b.op_weight(),
            Expr::Not(e) | Expr::Negate(e) => 1 + e.op_weight(),
            Expr::Between { expr, lo, hi } => {
                2 + expr.op_weight() + lo.op_weight() + hi.op_weight()
            }
            Expr::Cast { expr, .. } => 1 + expr.op_weight(),
            Expr::IsNull(e) | Expr::IsNotNull(e) => 1 + e.op_weight(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::FieldRef(i) => write!(f, "${i}"),
            Expr::Literal(s) => write!(f, "{s}"),
            Expr::Cmp { op, left, right } => write!(f, "({left} {} {right})", op.sql()),
            Expr::Arith { op, left, right } => write!(f, "({left} {} {right})", op.sql()),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Between { expr, lo, hi } => write!(f, "({expr} BETWEEN {lo} AND {hi})"),
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            Expr::Negate(e) => write!(f, "(-{e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
        }
    }
}

/// One aggregate measure of an `Aggregate` relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Measure {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument (None = `COUNT(*)`).
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

/// One sort key of a `Sort` relation.
#[derive(Debug, Clone, PartialEq)]
pub struct SortField {
    /// Key expression (usually a field reference).
    pub expr: Expr,
    /// Ascending order.
    pub ascending: bool,
    /// NULLs first.
    pub nulls_first: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("b", DataType::Float64, false),
            Field::new("s", DataType::Utf8, false),
        ])
    }

    #[test]
    fn typing_rules() {
        let s = schema();
        assert_eq!(Expr::field(0).output_type(&s).unwrap(), DataType::Int64);
        assert_eq!(
            Expr::cmp(CmpOp::Lt, Expr::field(0), Expr::field(1))
                .output_type(&s)
                .unwrap(),
            DataType::Boolean
        );
        assert_eq!(
            Expr::arith(ArithOp::Add, Expr::field(0), Expr::field(1))
                .output_type(&s)
                .unwrap(),
            DataType::Float64
        );
        // Comparing string with number is a type error.
        assert!(Expr::cmp(CmpOp::Eq, Expr::field(2), Expr::field(0))
            .output_type(&s)
            .is_err());
        // Boolean ops need boolean inputs.
        assert!(
            Expr::And(Box::new(Expr::field(0)), Box::new(Expr::field(0)))
                .output_type(&s)
                .is_err()
        );
        // Out-of-range reference.
        assert!(matches!(
            Expr::field(9).output_type(&s),
            Err(IrError::FieldOutOfRange { index: 9, arity: 3 })
        ));
        // Untyped NULL literal needs a cast.
        assert!(Expr::lit(Scalar::Null).output_type(&s).is_err());
        assert_eq!(
            Expr::Cast {
                expr: Box::new(Expr::lit(Scalar::Null)),
                to: DataType::Int64
            }
            .output_type(&s)
            .unwrap(),
            DataType::Int64
        );
    }

    #[test]
    fn referenced_fields_dedup() {
        let e = Expr::and_all([
            Expr::cmp(CmpOp::Gt, Expr::field(1), Expr::lit(Scalar::Float64(0.0))),
            Expr::cmp(CmpOp::Lt, Expr::field(1), Expr::field(0)),
        ]);
        let mut refs = Vec::new();
        e.referenced_fields(&mut refs);
        assert_eq!(refs, vec![1, 0]);
    }

    #[test]
    fn remap_rewrites_refs() {
        let e = Expr::arith(ArithOp::Mul, Expr::field(2), Expr::field(5));
        let r = e.remap_fields(&|i| i - 2);
        let mut refs = Vec::new();
        r.referenced_fields(&mut refs);
        assert_eq!(refs, vec![0, 3]);
    }

    #[test]
    fn op_weight_orders_complexity() {
        let cheap = Expr::cmp(CmpOp::Gt, Expr::field(0), Expr::lit(Scalar::Int64(1)));
        // The Deep Water projection: (rowid % 250000) / 500 — two divisions.
        let pricey = Expr::arith(
            ArithOp::Div,
            Expr::arith(
                ArithOp::Mod,
                Expr::field(0),
                Expr::lit(Scalar::Int64(250_000)),
            ),
            Expr::lit(Scalar::Int64(500)),
        );
        assert!(pricey.op_weight() > cheap.op_weight());
    }

    #[test]
    fn and_all_edge_cases() {
        assert_eq!(
            Expr::and_all(std::iter::empty()),
            Expr::Literal(Scalar::Boolean(true))
        );
        let single = Expr::lit(Scalar::Boolean(false));
        assert_eq!(Expr::and_all([single.clone()]), single);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::Between {
            expr: Box::new(Expr::field(1)),
            lo: Box::new(Expr::lit(Scalar::Float64(0.8))),
            hi: Box::new(Expr::lit(Scalar::Float64(3.2))),
        };
        assert_eq!(e.to_string(), "($1 BETWEEN 0.8 AND 3.2)");
    }
}
