//! `planck` — the static plan verifier for the Substrait boundary.
//!
//! The plan shipped from the connector to OCS is the *entire* contract
//! between engine and storage: whatever arrives is executed inside the
//! storage device, where a malformed or illegally-rewritten plan is
//! hardest to debug. This module is a multi-pass static analysis over
//! [`Rel`]/[`Expr`] trees that goes well beyond the schema inference in
//! [`Plan::validate`]:
//!
//! * **structure + resource bounds** — single `Read` leaf, supported IR
//!   version, and (for plans decoded from untrusted bytes) caps on tree
//!   depth, node count and schema width so a hostile frame cannot DoS
//!   the storage executor;
//! * **scope + typing** — field-reference bounds, comparison operand
//!   agreement, numeric-only arithmetic, `BETWEEN` bound typing *and*
//!   constant-bound ordering, cast legality against the kernel matrix,
//!   untyped `NULL` literals;
//! * **operator shape** — boolean filter predicates, non-empty
//!   project/aggregate/sort, measure input types the accumulators
//!   actually support, hashable group keys, field-reference sort keys,
//!   and the top-N rule (an inner `Sort` is only meaningful directly
//!   under a `Fetch`);
//! * **pushdown legality** (engine-side, before shipping) — `Fetch`
//!   only at the root with offset 0 (a per-object offset is semantically
//!   wrong once results are merged), at most one `Aggregate`, and no
//!   non-deterministic expressions below the storage boundary.
//!
//! Every violation is a structured [`Diagnostic`] carrying a stable
//! [`DiagCode`] and the plan path of the offending node, so the engine
//! can log exactly which node of a shipped plan was rejected.
//!
//! Three enforcement layers use these passes (see DESIGN.md):
//! engine-side before shipping ([`verify_pushdown`]), OCS-side on every
//! decoded plan ([`verify_untrusted`] at the RPC frontend plus
//! [`verify`] in the executor), and the optimizer invariant checker in
//! the engine crate (differential schema check after every rewrite).

use std::fmt;
use std::fmt::Write as _;

use columnar::agg::AggFunc;
use columnar::{DataType, Field, Scalar, Schema};

use crate::expr::Expr;
use crate::rel::{Plan, Rel, IR_VERSION};
use crate::IrError;

/// Stable diagnostic codes. The numeric bands group related checks:
/// `P1xx` structure/resources, `P2xx` expression typing, `P3xx`
/// operator shape, `P4xx` pushdown legality, `P9xx` transport errors
/// mapped from [`IrError`] at the decode boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DiagCode {
    /// `P100` — plan version differs from [`IR_VERSION`].
    UnsupportedVersion,
    /// `P101` — the leaf operator is not a `Read`.
    LeafNotRead,
    /// `P102` — operator chain or expression tree exceeds the depth cap.
    DepthExceeded,
    /// `P103` — total node count exceeds the cap.
    NodeCountExceeded,
    /// `P104` — a schema is wider than the cap.
    SchemaWidthExceeded,
    /// `P105` — a `Read` projection index is outside the base schema.
    ProjectionOutOfRange,
    /// `P200` — field reference outside the input arity.
    FieldOutOfRange,
    /// `P201` — comparison operand types disagree.
    CmpTypeMismatch,
    /// `P202` — arithmetic over a non-numeric type combination.
    ArithTypeIllegal,
    /// `P203` — AND/OR/NOT operand is not boolean.
    BoolOperandNotBoolean,
    /// `P204` — `BETWEEN` bound type incompatible with the tested expr.
    BetweenTypeMismatch,
    /// `P205` — constant `BETWEEN` bounds are inverted (lo > hi).
    BetweenBoundsInverted,
    /// `P206` — cast with no kernel support (e.g. boolean → float64).
    CastIllegal,
    /// `P207` — untyped `NULL` literal outside a typing cast.
    NullLiteralUntyped,
    /// `P208` — unary minus over a non-numeric type.
    NegateNonNumeric,
    /// `P300` — filter predicate is not boolean.
    FilterNotBoolean,
    /// `P301` — projection with no expressions.
    ProjectEmpty,
    /// `P302` — aggregate with neither keys nor measures.
    AggregateEmpty,
    /// `P303` — measure input type the accumulator cannot fold.
    MeasureTypeIllegal,
    /// `P304` — group-by key type is not hashable.
    GroupKeyNotHashable,
    /// `P305` — sort with no keys.
    SortEmpty,
    /// `P306` — sort key is not a plain field reference.
    SortKeyNotFieldRef,
    /// `P307` — inner `Sort` not directly consumed by a `Fetch` (top-N
    /// shape rule; a root `Sort` is a plain ORDER BY and is fine).
    SortNotUnderFetch,
    /// `P400` — pushed plan has an operator above its `Fetch`.
    PushdownFetchNotRoot,
    /// `P401` — pushed `Fetch` has a non-zero offset (wrong per object).
    PushdownOffsetNonZero,
    /// `P402` — pushed plan has more than one `Aggregate`.
    PushdownMultipleAggregates,
    /// `P403` — non-deterministic expression below the storage boundary.
    PushdownNonDeterministic,
    /// `P900` — plan bytes failed to decode.
    Corrupt,
    /// `P901` — type error surfaced by schema inference outside planck.
    TransportType,
    /// `P902` — structural error surfaced outside planck.
    TransportStructure,
}

impl DiagCode {
    /// The stable wire/log form of the code.
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagCode::UnsupportedVersion => "P100",
            DiagCode::LeafNotRead => "P101",
            DiagCode::DepthExceeded => "P102",
            DiagCode::NodeCountExceeded => "P103",
            DiagCode::SchemaWidthExceeded => "P104",
            DiagCode::ProjectionOutOfRange => "P105",
            DiagCode::FieldOutOfRange => "P200",
            DiagCode::CmpTypeMismatch => "P201",
            DiagCode::ArithTypeIllegal => "P202",
            DiagCode::BoolOperandNotBoolean => "P203",
            DiagCode::BetweenTypeMismatch => "P204",
            DiagCode::BetweenBoundsInverted => "P205",
            DiagCode::CastIllegal => "P206",
            DiagCode::NullLiteralUntyped => "P207",
            DiagCode::NegateNonNumeric => "P208",
            DiagCode::FilterNotBoolean => "P300",
            DiagCode::ProjectEmpty => "P301",
            DiagCode::AggregateEmpty => "P302",
            DiagCode::MeasureTypeIllegal => "P303",
            DiagCode::GroupKeyNotHashable => "P304",
            DiagCode::SortEmpty => "P305",
            DiagCode::SortKeyNotFieldRef => "P306",
            DiagCode::SortNotUnderFetch => "P307",
            DiagCode::PushdownFetchNotRoot => "P400",
            DiagCode::PushdownOffsetNonZero => "P401",
            DiagCode::PushdownMultipleAggregates => "P402",
            DiagCode::PushdownNonDeterministic => "P403",
            DiagCode::Corrupt => "P900",
            DiagCode::TransportType => "P901",
            DiagCode::TransportStructure => "P902",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verifier finding: a stable code, the plan path of the offending
/// node (`root.input.predicate.left` style), and a human message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable error code.
    pub code: DiagCode,
    /// Path from the plan root to the offending node.
    pub path: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(code: DiagCode, path: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            path: path.into(),
            message: message.into(),
        }
    }

    /// Map a decode/inference [`IrError`] into the diagnostic space so
    /// one structured type crosses the RPC error frame.
    pub fn from_ir(err: &IrError, path: impl Into<String>) -> Diagnostic {
        let (code, message) = match err {
            IrError::FieldOutOfRange { index, arity } => (
                DiagCode::FieldOutOfRange,
                format!("field reference #{index} out of range for arity {arity}"),
            ),
            IrError::Type(m) => (DiagCode::TransportType, m.clone()),
            IrError::Structure(m) => (DiagCode::TransportStructure, m.clone()),
            IrError::Corrupt(m) => (DiagCode::Corrupt, m.clone()),
        };
        Diagnostic::new(code, path, message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}: {}", self.code, self.path, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// Resource caps applied while walking a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum operator-chain length and expression depth.
    pub max_depth: usize,
    /// Maximum total node count (operators + expression nodes).
    pub max_nodes: usize,
    /// Maximum width of any schema in the plan.
    pub max_schema_width: usize,
}

impl Limits {
    /// Caps for plans decoded from an untrusted peer. Tighter than the
    /// wire-format caps so the verifier, not the allocator, is the
    /// backstop.
    pub fn untrusted() -> Limits {
        Limits {
            max_depth: 128,
            max_nodes: 65_536,
            max_schema_width: 4_096,
        }
    }

    /// Generous caps for engine-constructed plans; still finite so a
    /// runaway rewrite cannot build an unbounded tree unnoticed.
    pub fn generous() -> Limits {
        Limits {
            max_depth: 4_096,
            max_nodes: 1 << 20,
            max_schema_width: 65_536,
        }
    }
}

/// The verifier. Construct with [`Verifier::new`] (trusted input),
/// [`Verifier::untrusted`] (decoded bytes) or [`Verifier::pushdown`]
/// (engine-side pre-ship check), then call [`Verifier::verify`].
#[derive(Debug, Clone)]
pub struct Verifier {
    limits: Limits,
    pushdown: bool,
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new()
    }
}

impl Verifier {
    /// Structure, typing and shape passes with generous resource caps.
    pub fn new() -> Verifier {
        Verifier {
            limits: Limits::generous(),
            pushdown: false,
        }
    }

    /// Same passes with [`Limits::untrusted`] — for plans decoded from
    /// bytes an untrusted peer sent.
    pub fn untrusted() -> Verifier {
        Verifier {
            limits: Limits::untrusted(),
            pushdown: false,
        }
    }

    /// All passes including pushdown legality — the engine-side check
    /// run on a plan about to be shipped to storage. Uses untrusted
    /// limits so the engine rejects anything storage would.
    pub fn pushdown() -> Verifier {
        Verifier {
            limits: Limits::untrusted(),
            pushdown: true,
        }
    }

    /// Run every pass. Returns the inferred output schema on success or
    /// every diagnostic found (never empty on `Err`).
    pub fn verify(&self, plan: &Plan) -> Result<Schema, Vec<Diagnostic>> {
        let mut cx = Cx {
            limits: self.limits,
            nodes: 0,
            diags: Vec::new(),
        };

        if plan.version != IR_VERSION {
            cx.push(
                DiagCode::UnsupportedVersion,
                "root",
                format!("IR version {} (supported: {IR_VERSION})", plan.version),
            );
        }

        // Pass 1: structure + resource bounds. The chain is collected
        // iteratively so a hostile depth cannot overflow the stack.
        let mut ops: Vec<&Rel> = Vec::new();
        let mut cur = &plan.root;
        loop {
            ops.push(cur);
            if ops.len() > cx.limits.max_depth {
                cx.push(
                    DiagCode::DepthExceeded,
                    rel_path(ops.len() - 1),
                    format!("operator chain deeper than {}", cx.limits.max_depth),
                );
                return Err(cx.diags);
            }
            match cur.input() {
                Some(next) => cur = next,
                None => break,
            }
        }
        if !matches!(ops[ops.len() - 1], Rel::Read { .. }) {
            cx.push(
                DiagCode::LeafNotRead,
                rel_path(ops.len() - 1),
                format!(
                    "leaf operator is {}, must be Read",
                    ops[ops.len() - 1].name()
                ),
            );
            return Err(cx.diags);
        }

        // Pass 2 + 3: scope/typing and operator shape, leaf → root,
        // threading the inferred schema upward.
        let mut schema: Option<Schema> = None;
        for (depth, op) in ops.iter().enumerate().rev() {
            let path = rel_path(depth);
            let consumer = depth.checked_sub(1).map(|d| ops[d]);
            schema = self.check_op(&mut cx, op, schema, &path, consumer);
            if schema.is_none() {
                break;
            }
        }

        // Pass 4: pushdown legality (engine-side, root → leaf).
        if self.pushdown {
            let mut aggregates = 0usize;
            for (depth, op) in ops.iter().enumerate() {
                match op {
                    Rel::Fetch { offset, .. } => {
                        if depth != 0 {
                            cx.push(
                                DiagCode::PushdownFetchNotRoot,
                                rel_path(depth),
                                "pushed plans may only carry Fetch at the root",
                            );
                        }
                        if *offset != 0 {
                            cx.push(
                                DiagCode::PushdownOffsetNonZero,
                                rel_path(depth),
                                format!("offset {offset} is not mergeable across objects"),
                            );
                        }
                    }
                    Rel::Aggregate { .. } => {
                        aggregates += 1;
                        if aggregates > 1 {
                            cx.push(
                                DiagCode::PushdownMultipleAggregates,
                                rel_path(depth),
                                "pushed plans may carry at most one Aggregate",
                            );
                        }
                    }
                    _ => {}
                }
                let diags = &mut cx.diags;
                for_each_op_expr(op, |expr, path_of| {
                    if !deterministic(expr) {
                        diags.push(Diagnostic::new(
                            DiagCode::PushdownNonDeterministic,
                            format!("{}{}", rel_path(depth), path_of()),
                            "non-deterministic expressions may not be pushed",
                        ));
                    }
                });
            }
        }

        if cx.nodes > cx.limits.max_nodes {
            cx.push(
                DiagCode::NodeCountExceeded,
                "root",
                format!("{} nodes exceed cap {}", cx.nodes, cx.limits.max_nodes),
            );
        }

        match (cx.diags.is_empty(), schema) {
            (true, Some(s)) => Ok(s),
            _ => Err(cx.diags),
        }
    }

    /// Check one operator given its (already-checked) input schema;
    /// returns this operator's output schema if it could be inferred.
    fn check_op(
        &self,
        cx: &mut Cx,
        op: &Rel,
        input_schema: Option<Schema>,
        path: &str,
        consumer: Option<&Rel>,
    ) -> Option<Schema> {
        cx.nodes += 1;
        match op {
            Rel::Read {
                base_schema,
                projection,
                ..
            } => {
                if base_schema.len() > cx.limits.max_schema_width {
                    cx.push(
                        DiagCode::SchemaWidthExceeded,
                        path,
                        format!(
                            "base schema has {} fields (cap {})",
                            base_schema.len(),
                            cx.limits.max_schema_width
                        ),
                    );
                    return None;
                }
                match projection {
                    None => Some(base_schema.clone()),
                    Some(idx) => {
                        let mut ok = true;
                        for (i, col) in idx.iter().enumerate() {
                            if *col >= base_schema.len() {
                                cx.push(
                                    DiagCode::ProjectionOutOfRange,
                                    format!("{path}.projection[{i}]"),
                                    format!(
                                        "column #{col} outside the {}-column base schema",
                                        base_schema.len()
                                    ),
                                );
                                ok = false;
                            }
                        }
                        if !ok {
                            return None;
                        }
                        Some(Schema::new(
                            idx.iter().map(|&c| base_schema.field(c).clone()).collect(),
                        ))
                    }
                }
            }
            Rel::Filter { predicate, .. } => {
                let schema = input_schema?;
                let mut p = scratch(path, ".predicate");
                if let Some(t) = cx.check_expr(predicate, &schema, &mut p, 0) {
                    if t != DataType::Boolean {
                        cx.push(
                            DiagCode::FilterNotBoolean,
                            p,
                            format!("filter predicate is {t}, must be boolean"),
                        );
                    }
                }
                Some(schema)
            }
            Rel::Project { exprs, .. } => {
                let schema = input_schema?;
                if exprs.is_empty() {
                    cx.push(
                        DiagCode::ProjectEmpty,
                        path,
                        "projection has no expressions",
                    );
                    return None;
                }
                let mut p = scratch(path, "");
                let base = p.len();
                let mut fields = Vec::with_capacity(exprs.len());
                for (i, (e, name)) in exprs.iter().enumerate() {
                    let _ = write!(p, ".exprs[{i}]");
                    let t = cx.check_expr(e, &schema, &mut p, 0)?;
                    p.truncate(base);
                    fields.push(Field::new(name.clone(), t, true));
                }
                Some(Schema::new(fields))
            }
            Rel::Aggregate {
                group_by, measures, ..
            } => {
                let schema = input_schema?;
                if group_by.is_empty() && measures.is_empty() {
                    cx.push(
                        DiagCode::AggregateEmpty,
                        path,
                        "aggregate with no keys and no measures",
                    );
                    return None;
                }
                let mut p = scratch(path, "");
                let base = p.len();
                let mut fields = Vec::with_capacity(group_by.len() + measures.len());
                for (i, (e, name)) in group_by.iter().enumerate() {
                    let _ = write!(p, ".group_by[{i}]");
                    let t = cx.check_expr(e, &schema, &mut p, 0)?;
                    if !hashable(t) {
                        cx.push(
                            DiagCode::GroupKeyNotHashable,
                            p.as_str(),
                            format!("group key type {t} is not hashable"),
                        );
                    }
                    p.truncate(base);
                    fields.push(Field::new(name.clone(), t, true));
                }
                for (i, m) in measures.iter().enumerate() {
                    let _ = write!(p, ".measures[{i}]");
                    let measure = p.len();
                    let arg_type = match &m.arg {
                        Some(e) => {
                            p.push_str(".arg");
                            let t = cx.check_expr(e, &schema, &mut p, 0)?;
                            p.truncate(measure);
                            Some(t)
                        }
                        None => None,
                    };
                    match measure_type(m.func, arg_type) {
                        Ok(t) => fields.push(Field::new(m.name.clone(), t, true)),
                        Err(msg) => {
                            cx.push(DiagCode::MeasureTypeIllegal, p, msg);
                            return None;
                        }
                    }
                    p.truncate(base);
                }
                Some(Schema::new(fields))
            }
            Rel::Sort { keys, .. } => {
                let schema = input_schema?;
                if keys.is_empty() {
                    cx.push(DiagCode::SortEmpty, path, "sort with no keys");
                    return None;
                }
                // Top-N shape rule: an inner Sort is only meaningful when a
                // Fetch consumes it directly; a root Sort is a plain ORDER BY.
                if let Some(parent) = consumer {
                    if !matches!(parent, Rel::Fetch { .. }) {
                        cx.push(
                            DiagCode::SortNotUnderFetch,
                            path,
                            format!(
                                "Sort feeding {} is unobservable; only Fetch may consume a Sort",
                                parent.name()
                            ),
                        );
                    }
                }
                let mut p = scratch(path, "");
                let base = p.len();
                for (i, k) in keys.iter().enumerate() {
                    let _ = write!(p, ".keys[{i}]");
                    if !matches!(k.expr, Expr::FieldRef(_)) {
                        cx.push(
                            DiagCode::SortKeyNotFieldRef,
                            p.as_str(),
                            format!("sort key must be a field reference, got {}", k.expr),
                        );
                    }
                    cx.check_expr(&k.expr, &schema, &mut p, 0);
                    p.truncate(base);
                }
                Some(schema)
            }
            Rel::Fetch { .. } => input_schema,
        }
    }
}

/// Shared verifier state for one run.
struct Cx {
    limits: Limits,
    nodes: usize,
    diags: Vec<Diagnostic>,
}

impl Cx {
    fn push(&mut self, code: DiagCode, path: impl Into<String>, message: impl Into<String>) {
        self.diags.push(Diagnostic::new(code, path, message));
    }

    /// Type-check one expression, pushing diagnostics as it goes.
    /// Returns `None` when the type could not be established (the cause
    /// is already recorded); recursion is bounded by `limits.max_depth`.
    ///
    /// `path` is a scratch buffer holding this node's plan path; children
    /// push their segment and truncate it back, so the happy path does no
    /// allocation at all — the string only escapes into a [`Diagnostic`].
    fn check_expr(
        &mut self,
        e: &Expr,
        schema: &Schema,
        path: &mut String,
        depth: usize,
    ) -> Option<DataType> {
        self.nodes += 1;
        if depth > self.limits.max_depth {
            self.push(
                DiagCode::DepthExceeded,
                path.as_str(),
                format!("expression deeper than {}", self.limits.max_depth),
            );
            return None;
        }
        let d = depth + 1;
        let here = path.len();
        let sub = |cx: &mut Self, seg: &str, child: &Expr, path: &mut String| {
            path.push_str(seg);
            let t = cx.check_expr(child, schema, path, d);
            path.truncate(here);
            t
        };
        match e {
            Expr::FieldRef(i) => {
                if *i >= schema.len() {
                    self.push(
                        DiagCode::FieldOutOfRange,
                        path.as_str(),
                        format!(
                            "field reference #{i} out of range for arity {}",
                            schema.len()
                        ),
                    );
                    return None;
                }
                Some(schema.field(*i).data_type)
            }
            Expr::Literal(s) => match s.data_type() {
                Some(t) => Some(t),
                None => {
                    self.push(
                        DiagCode::NullLiteralUntyped,
                        path.as_str(),
                        "untyped NULL literal; wrap in CAST(NULL AS type)",
                    );
                    None
                }
            },
            Expr::Cmp { left, right, .. } => {
                let l = sub(self, ".left", left, path);
                let r = sub(self, ".right", right, path);
                if let (Some(l), Some(r)) = (l, r) {
                    if l != r && !(l.is_numeric() && r.is_numeric()) {
                        self.push(
                            DiagCode::CmpTypeMismatch,
                            path.as_str(),
                            format!("cannot compare {l} with {r}"),
                        );
                        return None;
                    }
                    Some(DataType::Boolean)
                } else {
                    None
                }
            }
            Expr::Arith { op, left, right } => {
                let l = sub(self, ".left", left, path)?;
                let r = sub(self, ".right", right, path)?;
                match op.result_type(l, r) {
                    Ok(t) => Some(t),
                    Err(e) => {
                        self.push(DiagCode::ArithTypeIllegal, path.as_str(), e.to_string());
                        None
                    }
                }
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                let mut ok = true;
                for (side, child) in [(".left", a), (".right", b)] {
                    match sub(self, side, child, path) {
                        Some(DataType::Boolean) => {}
                        Some(t) => {
                            path.push_str(side);
                            self.push(
                                DiagCode::BoolOperandNotBoolean,
                                path.as_str(),
                                format!("{} operand of boolean op is {t}", &side[1..]),
                            );
                            path.truncate(here);
                            ok = false;
                        }
                        None => ok = false,
                    }
                }
                ok.then_some(DataType::Boolean)
            }
            Expr::Not(child) => match sub(self, ".expr", child, path) {
                Some(DataType::Boolean) => Some(DataType::Boolean),
                Some(t) => {
                    path.push_str(".expr");
                    self.push(
                        DiagCode::BoolOperandNotBoolean,
                        path.as_str(),
                        format!("NOT of {t}"),
                    );
                    path.truncate(here);
                    None
                }
                None => None,
            },
            Expr::Between { expr, lo, hi } => {
                let t = sub(self, ".expr", expr, path);
                let lo_t = sub(self, ".lo", lo, path);
                let hi_t = sub(self, ".hi", hi, path);
                let (t, lo_t, hi_t) = (t?, lo_t?, hi_t?);
                let mut ok = true;
                for (side, bt) in [(".lo", lo_t), (".hi", hi_t)] {
                    if bt != t && !(bt.is_numeric() && t.is_numeric()) {
                        path.push_str(side);
                        self.push(
                            DiagCode::BetweenTypeMismatch,
                            path.as_str(),
                            format!("BETWEEN bound {bt} vs {t}"),
                        );
                        path.truncate(here);
                        ok = false;
                    }
                }
                // Constant-bound ordering: a literal range with lo > hi can
                // only be a rewrite bug, never a useful predicate.
                if ok {
                    if let (Expr::Literal(a), Expr::Literal(b)) = (lo.as_ref(), hi.as_ref()) {
                        if !a.is_null()
                            && !b.is_null()
                            && a.data_type() == b.data_type()
                            && a.total_cmp(b) == std::cmp::Ordering::Greater
                        {
                            self.push(
                                DiagCode::BetweenBoundsInverted,
                                path.as_str(),
                                format!("constant BETWEEN bounds inverted: {a} > {b}"),
                            );
                            ok = false;
                        }
                    }
                }
                ok.then_some(DataType::Boolean)
            }
            Expr::Cast { expr, to } => {
                // CAST(NULL AS t) is how untyped NULLs acquire a type.
                if matches!(expr.as_ref(), Expr::Literal(Scalar::Null)) {
                    return Some(*to);
                }
                let from = sub(self, ".expr", expr, path)?;
                if !cast_ok(from, *to) {
                    self.push(
                        DiagCode::CastIllegal,
                        path.as_str(),
                        format!("no cast kernel from {from} to {to}"),
                    );
                    return None;
                }
                Some(*to)
            }
            Expr::Negate(child) => {
                let t = sub(self, ".expr", child, path)?;
                if !matches!(t, DataType::Int64 | DataType::Float64) {
                    self.push(
                        DiagCode::NegateNonNumeric,
                        path.as_str(),
                        format!("negate of {t}"),
                    );
                    return None;
                }
                Some(t)
            }
            Expr::IsNull(child) | Expr::IsNotNull(child) => {
                sub(self, ".expr", child, path)?;
                Some(DataType::Boolean)
            }
        }
    }
}

/// A path scratch buffer seeded with `base` + `seg`, with headroom so the
/// per-node pushes below rarely reallocate.
fn scratch(base: &str, seg: &str) -> String {
    let mut p = String::with_capacity(base.len() + seg.len() + 24);
    p.push_str(base);
    p.push_str(seg);
    p
}

/// Path of the operator `depth` steps below the root.
fn rel_path(depth: usize) -> String {
    let mut p = String::from("root");
    for _ in 0..depth {
        p.push_str(".input");
    }
    p
}

/// Whether a value of this type can be a group-by key. Every current
/// type hashes (floats through a canonical bit pattern); the explicit
/// match forces a decision when a type is added.
fn hashable(t: DataType) -> bool {
    match t {
        DataType::Int64
        | DataType::Float64
        | DataType::Boolean
        | DataType::Utf8
        | DataType::Date32 => true,
    }
}

/// Whether an expression always evaluates to the same value for the
/// same input row. Every current node is deterministic; the exhaustive
/// match forces a decision when (e.g.) `random()` is added.
fn deterministic(e: &Expr) -> bool {
    match e {
        Expr::FieldRef(_) | Expr::Literal(_) => true,
        Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
            deterministic(left) && deterministic(right)
        }
        Expr::And(a, b) | Expr::Or(a, b) => deterministic(a) && deterministic(b),
        Expr::Not(x) | Expr::Cast { expr: x, .. } | Expr::Negate(x) => deterministic(x),
        Expr::IsNull(x) | Expr::IsNotNull(x) => deterministic(x),
        Expr::Between { expr, lo, hi } => {
            deterministic(expr) && deterministic(lo) && deterministic(hi)
        }
    }
}

/// The cast-kernel legality matrix (mirrors `columnar::kernels::cast`):
/// identity, numeric↔numeric, date↔int64, date→float64, anything→utf8.
fn cast_ok(from: DataType, to: DataType) -> bool {
    use DataType::*;
    from == to
        || to == Utf8
        || matches!(
            (from, to),
            (Int64, Float64)
                | (Float64, Int64)
                | (Date32, Int64)
                | (Int64, Date32)
                | (Date32, Float64)
        )
}

/// Measure legality against what the accumulators actually fold:
/// `COUNT` takes anything (or nothing), `SUM`/`AVG` need a numeric
/// argument, `MIN`/`MAX` need an argument of any ordered type.
fn measure_type(func: AggFunc, arg: Option<DataType>) -> Result<DataType, String> {
    match func {
        AggFunc::Count => Ok(DataType::Int64),
        AggFunc::Sum | AggFunc::Avg => match arg {
            Some(DataType::Int64) | Some(DataType::Float64) => {
                func.result_type(arg).map_err(|e| e.to_string())
            }
            Some(t) => Err(format!("{} over non-numeric {t}", func.sql())),
            None => Err(format!("{} requires an argument", func.sql())),
        },
        AggFunc::Min | AggFunc::Max => match arg {
            Some(t) => Ok(t),
            None => Err(format!("{} requires an argument", func.sql())),
        },
    }
}

/// Visit every expression an operator carries with a *lazy* path: `f`
/// receives the expression and a formatter that materializes the path
/// only when a diagnostic actually needs it, so the clean case allocates
/// nothing.
fn for_each_op_expr<'a>(op: &'a Rel, mut f: impl FnMut(&'a Expr, &dyn Fn() -> String)) {
    match op {
        Rel::Read { .. } | Rel::Fetch { .. } => {}
        Rel::Filter { predicate, .. } => f(predicate, &|| ".predicate".to_string()),
        Rel::Project { exprs, .. } => {
            for (i, (e, _)) in exprs.iter().enumerate() {
                f(e, &|| format!(".exprs[{i}]"));
            }
        }
        Rel::Aggregate {
            group_by, measures, ..
        } => {
            for (i, (e, _)) in group_by.iter().enumerate() {
                f(e, &|| format!(".group_by[{i}]"));
            }
            for (i, m) in measures.iter().enumerate() {
                if let Some(e) = &m.arg {
                    f(e, &|| format!(".measures[{i}].arg"));
                }
            }
        }
        Rel::Sort { keys, .. } => {
            for (i, k) in keys.iter().enumerate() {
                f(&k.expr, &|| format!(".keys[{i}]"));
            }
        }
    }
}

/// The most useful single diagnostic from a batch: the first one found,
/// with a note when others follow. For error types that carry exactly
/// one diagnostic across a boundary.
pub fn primary(mut diags: Vec<Diagnostic>) -> Diagnostic {
    if diags.is_empty() {
        // verify() never returns an empty Err; defend anyway.
        return Diagnostic::new(DiagCode::TransportStructure, "root", "verification failed");
    }
    let extra = diags.len() - 1;
    let mut first = diags.swap_remove(0);
    if extra > 0 {
        first.message = format!("{} (+{extra} more)", first.message);
    }
    first
}

/// Verify a trusted (engine-constructed) plan.
pub fn verify(plan: &Plan) -> Result<Schema, Vec<Diagnostic>> {
    Verifier::new().verify(plan)
}

/// Verify a plan decoded from untrusted bytes (resource caps applied).
pub fn verify_untrusted(plan: &Plan) -> Result<Schema, Vec<Diagnostic>> {
    Verifier::untrusted().verify(plan)
}

/// Verify a plan about to be pushed to storage (all passes).
pub fn verify_pushdown(plan: &Plan) -> Result<Schema, Vec<Diagnostic>> {
    Verifier::pushdown().verify(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Measure, SortField};
    use columnar::kernels::arith::ArithOp;
    use columnar::kernels::cmp::CmpOp;

    fn base() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("x", DataType::Float64, false),
            Field::new("tag", DataType::Utf8, false),
        ])
    }

    fn codes(plan: &Plan) -> Vec<DiagCode> {
        match verify(plan) {
            Ok(_) => Vec::new(),
            Err(ds) => ds.iter().map(|d| d.code).collect(),
        }
    }

    #[test]
    fn valid_plan_passes_and_infers_schema() {
        let plan = Plan::new(Rel::Fetch {
            input: Box::new(Rel::Sort {
                input: Box::new(Rel::Aggregate {
                    input: Box::new(Rel::Filter {
                        input: Box::new(Rel::read("t", base(), None)),
                        predicate: Expr::Between {
                            expr: Box::new(Expr::field(1)),
                            lo: Box::new(Expr::lit(Scalar::Float64(0.8))),
                            hi: Box::new(Expr::lit(Scalar::Float64(3.2))),
                        },
                    }),
                    group_by: vec![(Expr::field(0), "id".into())],
                    measures: vec![Measure {
                        func: AggFunc::Avg,
                        arg: Some(Expr::field(1)),
                        name: "e".into(),
                    }],
                }),
                keys: vec![SortField {
                    expr: Expr::field(1),
                    ascending: true,
                    nulls_first: true,
                }],
            }),
            offset: 0,
            limit: 100,
        });
        let s = verify(&plan).unwrap();
        assert_eq!(s.names(), vec!["id", "e"]);
        // The same plan is also pushdown-legal.
        assert!(verify_pushdown(&plan).is_ok());
    }

    #[test]
    fn version_and_leaf_structure() {
        let mut plan = Plan::new(Rel::read("t", base(), None));
        plan.version = 7;
        assert_eq!(codes(&plan), vec![DiagCode::UnsupportedVersion]);
    }

    #[test]
    fn field_out_of_range_with_path() {
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", base(), None)),
            predicate: Expr::cmp(CmpOp::Gt, Expr::field(9), Expr::lit(Scalar::Int64(1))),
        });
        let ds = verify(&plan).unwrap_err();
        assert_eq!(ds[0].code, DiagCode::FieldOutOfRange);
        assert_eq!(ds[0].path, "root.predicate.left");
    }

    #[test]
    fn cmp_and_arith_type_rules() {
        let cmp = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", base(), None)),
            predicate: Expr::cmp(CmpOp::Eq, Expr::field(2), Expr::field(0)),
        });
        assert_eq!(codes(&cmp), vec![DiagCode::CmpTypeMismatch]);

        let arith = Plan::new(Rel::Project {
            input: Box::new(Rel::read("t", base(), None)),
            exprs: vec![(
                Expr::arith(ArithOp::Add, Expr::field(2), Expr::field(0)),
                "y".into(),
            )],
        });
        assert_eq!(codes(&arith), vec![DiagCode::ArithTypeIllegal]);
    }

    #[test]
    fn between_ordering_and_typing() {
        let inverted = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", base(), None)),
            predicate: Expr::Between {
                expr: Box::new(Expr::field(1)),
                lo: Box::new(Expr::lit(Scalar::Float64(5.0))),
                hi: Box::new(Expr::lit(Scalar::Float64(2.0))),
            },
        });
        assert_eq!(codes(&inverted), vec![DiagCode::BetweenBoundsInverted]);

        let mistyped = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", base(), None)),
            predicate: Expr::Between {
                expr: Box::new(Expr::field(2)),
                lo: Box::new(Expr::lit(Scalar::Int64(0))),
                hi: Box::new(Expr::lit(Scalar::Int64(9))),
            },
        });
        assert!(codes(&mistyped).contains(&DiagCode::BetweenTypeMismatch));
    }

    #[test]
    fn cast_legality() {
        let bad = Plan::new(Rel::Project {
            input: Box::new(Rel::read("t", base(), None)),
            exprs: vec![(
                Expr::Cast {
                    expr: Box::new(Expr::cmp(
                        CmpOp::Gt,
                        Expr::field(1),
                        Expr::lit(Scalar::Float64(0.0)),
                    )),
                    to: DataType::Float64,
                },
                "y".into(),
            )],
        });
        assert_eq!(codes(&bad), vec![DiagCode::CastIllegal]);
        // Anything casts to utf8; null literals acquire a type via cast.
        assert!(cast_ok(DataType::Boolean, DataType::Utf8));
        assert!(!cast_ok(DataType::Utf8, DataType::Int64));
    }

    #[test]
    fn untyped_null_literal() {
        let plan = Plan::new(Rel::Project {
            input: Box::new(Rel::read("t", base(), None)),
            exprs: vec![(Expr::lit(Scalar::Null), "n".into())],
        });
        assert_eq!(codes(&plan), vec![DiagCode::NullLiteralUntyped]);
    }

    #[test]
    fn measure_legality() {
        let sum_utf8 = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::read("t", base(), None)),
            group_by: vec![],
            measures: vec![Measure {
                func: AggFunc::Sum,
                arg: Some(Expr::field(2)),
                name: "s".into(),
            }],
        });
        assert_eq!(codes(&sum_utf8), vec![DiagCode::MeasureTypeIllegal]);

        let min_no_arg = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::read("t", base(), None)),
            group_by: vec![],
            measures: vec![Measure {
                func: AggFunc::Min,
                arg: None,
                name: "m".into(),
            }],
        });
        assert_eq!(codes(&min_no_arg), vec![DiagCode::MeasureTypeIllegal]);
    }

    #[test]
    fn sort_shape_rules() {
        // Sort feeding a Filter is unobservable.
        let buried = Plan::new(Rel::Filter {
            input: Box::new(Rel::Sort {
                input: Box::new(Rel::read("t", base(), None)),
                keys: vec![SortField {
                    expr: Expr::field(0),
                    ascending: true,
                    nulls_first: false,
                }],
            }),
            predicate: Expr::cmp(CmpOp::Gt, Expr::field(0), Expr::lit(Scalar::Int64(0))),
        });
        assert_eq!(codes(&buried), vec![DiagCode::SortNotUnderFetch]);

        // A root Sort is a plain ORDER BY and passes.
        let root_sort = Plan::new(Rel::Sort {
            input: Box::new(Rel::read("t", base(), None)),
            keys: vec![SortField {
                expr: Expr::field(0),
                ascending: false,
                nulls_first: false,
            }],
        });
        assert!(verify(&root_sort).is_ok());

        // Computed sort keys are rejected.
        let computed = Plan::new(Rel::Sort {
            input: Box::new(Rel::read("t", base(), None)),
            keys: vec![SortField {
                expr: Expr::arith(ArithOp::Add, Expr::field(0), Expr::lit(Scalar::Int64(1))),
                ascending: true,
                nulls_first: false,
            }],
        });
        assert_eq!(codes(&computed), vec![DiagCode::SortKeyNotFieldRef]);
    }

    #[test]
    fn pushdown_rules() {
        // Fetch below the root.
        let buried_fetch = Plan::new(Rel::Filter {
            input: Box::new(Rel::Fetch {
                input: Box::new(Rel::read("t", base(), None)),
                offset: 0,
                limit: 10,
            }),
            predicate: Expr::cmp(CmpOp::Gt, Expr::field(0), Expr::lit(Scalar::Int64(0))),
        });
        assert!(verify(&buried_fetch).is_ok());
        let ds = verify_pushdown(&buried_fetch).unwrap_err();
        assert_eq!(ds[0].code, DiagCode::PushdownFetchNotRoot);

        // Non-zero offset is not mergeable per object.
        let offset = Plan::new(Rel::Fetch {
            input: Box::new(Rel::read("t", base(), None)),
            offset: 5,
            limit: 10,
        });
        assert!(verify(&offset).is_ok());
        let ds = verify_pushdown(&offset).unwrap_err();
        assert_eq!(ds[0].code, DiagCode::PushdownOffsetNonZero);

        // Two aggregates cannot be pushed.
        let double_agg = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::Aggregate {
                input: Box::new(Rel::read("t", base(), None)),
                group_by: vec![(Expr::field(0), "id".into())],
                measures: vec![Measure {
                    func: AggFunc::Sum,
                    arg: Some(Expr::field(1)),
                    name: "s".into(),
                }],
            }),
            group_by: vec![],
            measures: vec![Measure {
                func: AggFunc::Sum,
                arg: Some(Expr::field(1)),
                name: "ss".into(),
            }],
        });
        let ds = verify_pushdown(&double_agg).unwrap_err();
        assert!(ds
            .iter()
            .any(|d| d.code == DiagCode::PushdownMultipleAggregates));
    }

    #[test]
    fn resource_limits() {
        // A chain deeper than the untrusted cap is cut off early.
        let mut rel = Rel::read("t", base(), None);
        for _ in 0..200 {
            rel = Rel::Fetch {
                input: Box::new(rel),
                offset: 0,
                limit: 1,
            };
        }
        let plan = Plan::new(rel);
        let ds = verify_untrusted(&plan).unwrap_err();
        assert_eq!(ds[0].code, DiagCode::DepthExceeded);
        // The generous trusted limits accept it.
        assert!(verify(&plan).is_ok());

        // A hostile schema width is rejected.
        let wide = Schema::new(
            (0..5_000)
                .map(|i| Field::new(format!("c{i}"), DataType::Int64, false))
                .collect(),
        );
        let plan = Plan::new(Rel::read("t", wide, None));
        let ds = verify_untrusted(&plan).unwrap_err();
        assert_eq!(ds[0].code, DiagCode::SchemaWidthExceeded);
    }

    #[test]
    fn diagnostics_render_code_and_path() {
        let d = Diagnostic::new(DiagCode::CmpTypeMismatch, "root.predicate", "boom");
        assert_eq!(d.to_string(), "[P201] at root.predicate: boom");
        assert_eq!(
            primary(vec![d.clone(), d.clone()]).message,
            "boom (+1 more)"
        );
        let ir = IrError::FieldOutOfRange { index: 4, arity: 2 };
        let mapped = Diagnostic::from_ir(&ir, "root");
        assert_eq!(mapped.code, DiagCode::FieldOutOfRange);
    }

    #[test]
    fn projection_bounds() {
        let plan = Plan::new(Rel::read("t", base(), Some(vec![0, 7])));
        let ds = verify(&plan).unwrap_err();
        assert_eq!(ds[0].code, DiagCode::ProjectionOutOfRange);
        assert_eq!(ds[0].path, "root.projection[1]");
    }
}
