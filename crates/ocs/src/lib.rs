//! `ocs` — Object-based Computational Storage.
//!
//! The reproduction of SK hynix's OCS as described in the paper: an object
//! storage system with **an embedded SQL engine inside the storage layer**,
//! able to execute column projection, expression projection, filtering,
//! aggregation, sorting and limit/top-N *next to the data* — the
//! capabilities that S3 Select / MinIO Select lack (those stop at
//! projection + filter, and cannot even handle doubles).
//!
//! Architecture (paper §2.3, §5.1):
//!
//! * [`StorageNode`] — holds objects (via `objstore`) and runs the
//!   [`exec`] embedded executor over Substrait plans, on deliberately weak
//!   hardware (16 cores @ 2.0 GHz in the paper's testbed);
//! * [`OcsFrontend`] — the unified endpoint: parses incoming Substrait IR,
//!   dispatches to the storage node owning the object, and relays Arrow
//!   results;
//! * [`OcsClient`] — the "gRPC" boundary: serializes plans to bytes on the
//!   way in and Arrow-IPC batches on the way out, counting every byte so
//!   the cost model can bill the link.
//!
//! Everything is executed for real; the returned [`OcsResponse`] carries
//! the simulated resource consumption (storage core-seconds, decompress
//! core-seconds, disk bytes, frontend core-seconds) for the caller's
//! ledger.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use columnar::prelude::*;
//! use substrait_ir::{Expr, Plan, Rel};
//! use columnar::kernels::cmp::CmpOp;
//! use ocs::{Ocs, OcsConfig};
//! use objstore::ObjectStore;
//!
//! // Store one parq object.
//! let store = Arc::new(ObjectStore::new());
//! store.create_bucket("lake").unwrap();
//! let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64, false)]));
//! let batch = RecordBatch::try_new(
//!     schema.clone(),
//!     vec![Arc::new(Array::from_i64((0..100).collect()))],
//! ).unwrap();
//! let bytes = parq::writer::write_file(schema.clone(), &[batch], Default::default()).unwrap();
//! store.put_object("lake", "t/0", bytes.into()).unwrap();
//!
//! // Query it through OCS with a pushed-down filter.
//! let ocs = Ocs::new(store, OcsConfig::paper_testbed());
//! let plan = Plan::new(Rel::Filter {
//!     input: Box::new(Rel::read("t", (*schema).clone(), None)),
//!     predicate: Expr::cmp(CmpOp::GtEq, Expr::field(0), Expr::lit(Scalar::Int64(90))),
//! });
//! let resp = ocs.client().execute(&plan, "lake", "t/0").unwrap();
//! let rows: usize = resp.batches.iter().map(|b| b.num_rows()).sum();
//! assert_eq!(rows, 10);
//! assert!(resp.response_bytes < 1000, "only filtered rows cross the wire");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod exec;
pub mod frontend;
pub mod node;
pub mod rpc;
pub mod stream;

pub use frontend::OcsFrontend;
pub use node::StorageNode;
pub use rpc::{BatchStream, OcsClient, OcsResponse, StreamSummary, DEFAULT_FRAME_WINDOW};
pub use stream::{WireFrame, WireStream};
// Storage-side plan verification is the planck module of `substrait-ir`;
// re-exported so callers name one crate for the whole trust boundary.
pub use substrait_ir::planck;

use netsim::{CostParams, DiskSpec, NodeSpec};
use objstore::ObjectStore;
use std::fmt;
use std::sync::Arc;

/// Errors from OCS request handling.
#[derive(Debug)]
pub enum OcsError {
    /// Malformed or unsupported Substrait plan. Carries the structured
    /// verifier diagnostic — stable code plus the plan path of the
    /// offending node — so the engine side can log exactly *which* node
    /// of the shipped plan was rejected, not just a flattened string.
    Plan(planck::Diagnostic),
    /// Storage access failed.
    Storage(objstore::StoreError),
    /// Execution failed.
    Exec(String),
    /// Invalid deployment configuration (rejected by
    /// [`OcsConfig::validate`] before anything is brought up).
    Config(String),
}

impl OcsError {
    /// The rejected-plan diagnostic, when this is a plan error.
    pub fn diagnostic(&self) -> Option<&planck::Diagnostic> {
        match self {
            OcsError::Plan(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Display for OcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OcsError::Plan(d) => write!(f, "plan rejected: {d}"),
            OcsError::Storage(e) => write!(f, "storage error: {e}"),
            OcsError::Exec(m) => write!(f, "execution error: {m}"),
            OcsError::Config(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for OcsError {}

impl From<objstore::StoreError> for OcsError {
    fn from(e: objstore::StoreError) -> Self {
        OcsError::Storage(e)
    }
}

impl From<planck::Diagnostic> for OcsError {
    fn from(d: planck::Diagnostic) -> Self {
        OcsError::Plan(d)
    }
}

/// Result alias.
pub type OcsResult<T> = std::result::Result<T, OcsError>;

/// Hardware + cost configuration of an OCS deployment.
#[derive(Debug, Clone)]
pub struct OcsConfig {
    /// The storage node's compute resources.
    pub storage_node: NodeSpec,
    /// The storage node's disk.
    pub storage_disk: DiskSpec,
    /// The frontend node's compute resources.
    pub frontend_node: NodeSpec,
    /// Work-unit cost coefficients (shared with the query engine).
    pub cost: CostParams,
    /// Number of storage nodes (objects are sharded by key hash).
    pub storage_nodes: usize,
    /// Bounded in-flight frame window of the streaming boundary: at most
    /// this many encoded frames are buffered client-side (backpressure).
    pub frame_window: usize,
    /// Byte budget of each storage node's decoded row-group cache
    /// (decoded column chunks, keyed by object version). Zero disables
    /// the tier.
    pub row_group_cache_bytes: u64,
    /// Byte budget of each storage node's pushdown-result cache (whole
    /// verified-subplan responses, keyed by plan fingerprint + object
    /// version). Zero disables the tier.
    pub result_cache_bytes: u64,
}

/// Smallest nonzero cache budget [`OcsConfig::validate`] accepts: tinier
/// budgets reject every realistic entry and silently behave as disabled,
/// which is exactly the misconfiguration validation exists to catch.
pub const MIN_CACHE_BYTES: u64 = 64 * 1024;

impl OcsConfig {
    /// The paper's testbed: one storage node at 16 × 2.0 GHz behind a
    /// 48 × 3.9 GHz frontend. Both near-storage cache tiers are on with
    /// production budgets (64 MiB decoded row groups, 32 MiB results).
    pub fn paper_testbed() -> OcsConfig {
        let cluster = netsim::ClusterSpec::paper_testbed();
        OcsConfig {
            storage_node: cluster.storage,
            storage_disk: cluster.storage_disk,
            frontend_node: cluster.frontend,
            cost: CostParams::default(),
            storage_nodes: 1,
            frame_window: rpc::DEFAULT_FRAME_WINDOW,
            row_group_cache_bytes: 64 * 1024 * 1024,
            result_cache_bytes: 32 * 1024 * 1024,
        }
    }

    /// The same testbed with both cache tiers off — the cold-only
    /// configuration, for A/B comparisons and tests that re-execute the
    /// same plan and expect identical cost ledgers.
    pub fn paper_testbed_uncached() -> OcsConfig {
        OcsConfig {
            row_group_cache_bytes: 0,
            result_cache_bytes: 0,
            ..OcsConfig::paper_testbed()
        }
    }

    /// Check the deployment knobs, rejecting values that would previously
    /// have been silently clamped or silently useless.
    pub fn validate(&self) -> OcsResult<()> {
        if self.storage_nodes == 0 {
            return Err(OcsError::Config(
                "storage_nodes must be >= 1 (a deployment needs at least one node)".into(),
            ));
        }
        if self.frame_window == 0 {
            return Err(OcsError::Config(
                "frame_window must be >= 1 (zero in-flight frames can never make progress)".into(),
            ));
        }
        for (name, bytes) in [
            ("row_group_cache_bytes", self.row_group_cache_bytes),
            ("result_cache_bytes", self.result_cache_bytes),
        ] {
            if bytes > 0 && bytes < MIN_CACHE_BYTES {
                return Err(OcsError::Config(format!(
                    "{name} = {bytes} is below the {MIN_CACHE_BYTES}-byte minimum; \
                     use 0 to disable the tier"
                )));
            }
        }
        Ok(())
    }
}

/// A whole OCS deployment: frontend + storage nodes over one object store.
#[derive(Debug)]
pub struct Ocs {
    frontend: Arc<OcsFrontend>,
    frame_window: usize,
}

impl Ocs {
    /// Bring up OCS over `store` with `config`.
    ///
    /// # Panics
    /// Panics when `config` fails [`OcsConfig::validate`]; use
    /// [`Ocs::try_new`] to handle the error instead.
    pub fn new(store: Arc<ObjectStore>, config: OcsConfig) -> Ocs {
        match Ocs::try_new(store, config) {
            Ok(ocs) => ocs,
            Err(e) => panic!("{e}"),
        }
    }

    /// Bring up OCS over `store` with `config`, validating the config
    /// first. Each storage node gets its own pair of near-storage caches
    /// sized by the config budgets.
    pub fn try_new(store: Arc<ObjectStore>, config: OcsConfig) -> OcsResult<Ocs> {
        config.validate()?;
        let nodes: Vec<Arc<StorageNode>> = (0..config.storage_nodes)
            .map(|id| {
                Arc::new(
                    StorageNode::new(
                        id,
                        store.clone(),
                        config.storage_node.clone(),
                        config.storage_disk,
                        config.cost.clone(),
                    )
                    .with_caches(cache::NodeCaches::new(
                        config.row_group_cache_bytes,
                        config.result_cache_bytes,
                    )),
                )
            })
            .collect();
        Ok(Ocs {
            frontend: Arc::new(OcsFrontend::new(nodes, config.frontend_node, config.cost)),
            frame_window: config.frame_window,
        })
    }

    /// The frontend endpoint.
    pub fn frontend(&self) -> &Arc<OcsFrontend> {
        &self.frontend
    }

    /// A client bound to this deployment's frontend, using the configured
    /// in-flight frame window.
    pub fn client(&self) -> OcsClient {
        OcsClient::with_window(self.frontend.clone(), self.frame_window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_config_is_valid() {
        assert!(OcsConfig::paper_testbed().validate().is_ok());
        assert!(OcsConfig::paper_testbed_uncached().validate().is_ok());
    }

    #[test]
    fn zero_frame_window_is_a_config_error() {
        let config = OcsConfig {
            frame_window: 0,
            ..OcsConfig::paper_testbed()
        };
        let err = config.validate().unwrap_err();
        assert!(matches!(err, OcsError::Config(_)), "got {err}");
        assert!(err.to_string().contains("frame_window"));
        assert!(Ocs::try_new(Arc::new(ObjectStore::new()), config).is_err());
    }

    #[test]
    fn zero_storage_nodes_is_a_config_error() {
        let config = OcsConfig {
            storage_nodes: 0,
            ..OcsConfig::paper_testbed()
        };
        let err = config.validate().unwrap_err();
        assert!(err.to_string().contains("storage_nodes"));
    }

    #[test]
    fn undersized_cache_budgets_are_config_errors() {
        for (rg, res, field) in [
            (MIN_CACHE_BYTES - 1, 0, "row_group_cache_bytes"),
            (0, 1, "result_cache_bytes"),
        ] {
            let config = OcsConfig {
                row_group_cache_bytes: rg,
                result_cache_bytes: res,
                ..OcsConfig::paper_testbed()
            };
            let err = config.validate().unwrap_err();
            assert!(err.to_string().contains(field), "got {err}");
        }
        // Zero means disabled, and the minimum itself is accepted.
        let config = OcsConfig {
            row_group_cache_bytes: 0,
            result_cache_bytes: MIN_CACHE_BYTES,
            ..OcsConfig::paper_testbed()
        };
        assert!(config.validate().is_ok());
    }
}
