//! Frame-at-a-time production of a streaming OCS response.
//!
//! [`WireStream`] is the frontend's half of the streaming boundary: it
//! holds the storage node's result and *encodes lazily* — a schema frame,
//! then one frame per batch as the consumer pulls, then a trailer frame
//! carrying the request's [`ExecStats`] — so the consumer can overlap
//! decode/compute with transfer instead of waiting for one monolithic
//! Arrow payload. Each produced [`WireFrame`] carries the simulated
//! per-stage seconds ([`FrameTiming`]) the engine's pipeline scheduler
//! composes into an overlapped makespan.
//!
//! Cost attribution: storage-side seconds (scan CPU, decompression) and
//! disk bytes are apportioned to batch frames proportional to each batch's
//! in-memory size — the executor produces batches per row group, so a
//! frame's share of the scan is its share of the data. Frontend relay
//! cost is billed per frame from that frame's actual encoded length, with
//! the fixed per-request component attached to the schema frame.

use std::collections::VecDeque;

use bytes::Bytes;
use columnar::ipc::{encode_batch_frame, encode_schema_frame, encode_trailer_frame};
use columnar::{RecordBatch, SchemaRef};
use netsim::{CostParams, ExecStats, FrameTiming, NodeSpec};

use crate::node::NodeResponse;

/// One encoded frame plus its simulated production cost.
#[derive(Debug, Clone)]
pub struct WireFrame {
    /// The encoded frame bytes (what crosses the network).
    pub bytes: Bytes,
    /// Simulated per-stage seconds of producing this frame. The consumer
    /// fills `compute_s` after decoding/processing.
    pub timing: FrameTiming,
}

/// A batch waiting to be encoded, with its pre-apportioned storage cost.
#[derive(Debug)]
struct PendingBatch {
    batch: RecordBatch,
    disk_bytes: u64,
    decompress_s: f64,
    storage_s: f64,
    input_chunks: u32,
}

/// Lazy frame producer for one request (schema → batches → trailer).
#[derive(Debug)]
pub struct WireStream {
    pending_schema: Option<SchemaRef>,
    batches: VecDeque<PendingBatch>,
    trailer_pending: bool,
    plan_bytes_len: usize,
    frontend_spec: NodeSpec,
    cost: CostParams,
    stats: ExecStats,
}

impl WireStream {
    /// Build a stream from a storage node's response. `plan_bytes_len` is
    /// the request size (its parse cost lands on the schema frame).
    pub fn new(
        schema: SchemaRef,
        resp: NodeResponse,
        plan_bytes_len: usize,
        frontend_spec: NodeSpec,
        cost: CostParams,
    ) -> WireStream {
        let total: f64 = resp
            .batches
            .iter()
            .map(|b| b.byte_size() as f64)
            .sum::<f64>()
            .max(1.0);
        let n = resp.batches.len();
        let mut disk_left = resp.exec.disk_bytes;
        // Scanned row groups, spread evenly over the batch frames. In the
        // streaming scan case batches and row groups are ~1:1 and every
        // frame stays indivisible; when the operator tree collapses the
        // scan into few output batches (aggregation pushdown), the frame
        // advertises how many independent input slices are behind it.
        let groups_scanned = resp.exec.scan_work.len();
        let spans = resp.spans;
        let mut batches = VecDeque::with_capacity(n);
        for (i, batch) in resp.batches.into_iter().enumerate() {
            // Weight by in-memory size; uniform when every batch is empty.
            let w = if total > 1.0 {
                batch.byte_size() as f64 / total
            } else {
                1.0 / n.max(1) as f64
            };
            // Integer bytes: give the last frame the remainder so the
            // per-frame disk bytes sum exactly to the request total.
            let disk = if i + 1 == n {
                disk_left
            } else {
                ((resp.exec.disk_bytes as f64 * w) as u64).min(disk_left)
            };
            disk_left -= disk;
            let input_chunks =
                (groups_scanned / n.max(1) + usize::from(i < groups_scanned % n.max(1))) as u32;
            batches.push_back(PendingBatch {
                batch,
                disk_bytes: disk,
                decompress_s: resp.decompress_s * w,
                storage_s: resp.cpu_s * w,
                input_chunks,
            });
        }
        let stats = ExecStats {
            storage_cpu_s: resp.cpu_s,
            storage_decompress_s: resp.decompress_s,
            frontend_cpu_s: 0.0, // accumulated as frames are produced
            disk_bytes: resp.exec.disk_bytes,
            rows_scanned: resp.exec.rows_scanned,
            rows_returned: resp.exec.rows_emitted,
            row_groups_skipped: resp.exec.row_groups_skipped,
            decoded_bytes_avoided: resp.exec.decoded_bytes_avoided,
            rg_cache_hits: resp.exec.rg_cache_hits,
            rg_cache_misses: resp.exec.rg_cache_misses,
            cache_bytes_avoided: resp.exec.cache_bytes_avoided,
            result_cache_hits: resp.exec.result_cache_hits,
            spans,
        };
        WireStream {
            pending_schema: Some(schema),
            batches,
            trailer_pending: true,
            plan_bytes_len,
            frontend_spec,
            cost,
            stats,
        }
    }

    /// Frames not yet produced (schema + batches + trailer).
    pub fn frames_remaining(&self) -> usize {
        self.pending_schema.is_some() as usize + self.batches.len() + self.trailer_pending as usize
    }

    fn frontend_seconds(&self, frame_len: usize, with_request_fixed: bool) -> f64 {
        let mut work = frame_len as f64 * (self.cost.frontend_per_byte + self.cost.byte_ser);
        if with_request_fixed {
            work += self.cost.frontend_per_request
                + self.plan_bytes_len as f64 * self.cost.frontend_per_byte;
        }
        self.frontend_spec.core_seconds(work)
    }

    /// Produce the next frame, or `None` once the trailer has been sent.
    pub fn next_frame(&mut self) -> Option<WireFrame> {
        if let Some(schema) = self.pending_schema.take() {
            let bytes = encode_schema_frame(&schema);
            let frontend_s = self.frontend_seconds(bytes.len(), true);
            self.stats.frontend_cpu_s += frontend_s;
            return Some(WireFrame {
                timing: FrameTiming {
                    bytes: bytes.len() as u64,
                    frontend_s,
                    is_batch: false,
                    ..Default::default()
                },
                bytes,
            });
        }
        if let Some(p) = self.batches.pop_front() {
            let bytes = encode_batch_frame(&p.batch);
            let frontend_s = self.frontend_seconds(bytes.len(), false);
            self.stats.frontend_cpu_s += frontend_s;
            return Some(WireFrame {
                timing: FrameTiming {
                    bytes: bytes.len() as u64,
                    disk_bytes: p.disk_bytes,
                    decompress_s: p.decompress_s,
                    storage_s: p.storage_s,
                    frontend_s,
                    is_batch: true,
                    compute_s: 0.0,
                    input_chunks: p.input_chunks,
                },
                bytes,
            });
        }
        if self.trailer_pending {
            self.trailer_pending = false;
            // The trailer's own relay cost must be inside the stats it
            // carries; only the fixed-width `frontend_cpu_s` changes
            // between the two encodings (the span payload is already
            // final), so the probe length equals the final length.
            let probe_len = encode_trailer_frame(&self.stats.encode()).len();
            let frontend_s = self.frontend_seconds(probe_len, false);
            self.stats.frontend_cpu_s += frontend_s;
            let bytes = encode_trailer_frame(&self.stats.encode());
            return Some(WireFrame {
                timing: FrameTiming {
                    bytes: bytes.len() as u64,
                    frontend_s,
                    is_batch: false,
                    ..Default::default()
                },
                bytes,
            });
        }
        None
    }
}
