//! The client side of the OCS "gRPC" boundary.
//!
//! In the paper, the connector's PageSourceProvider serializes Substrait
//! IR with protobuf and sends it over gRPC; OCS answers with Arrow
//! columnar payloads. Here the boundary is a function call, but the data
//! crossing it is *actual bytes in both directions* — the plan is really
//! encoded and the batches really serialized/deserialized — so byte
//! counters measure exactly what a network would carry.

use std::sync::Arc;

use columnar::RecordBatch;
use substrait_ir::Plan;

use crate::frontend::OcsFrontend;
use crate::OcsResult;

/// One executed request, decoded.
#[derive(Debug, Clone)]
pub struct OcsResponse {
    /// Result batches.
    pub batches: Vec<RecordBatch>,
    /// Bytes of the serialized plan (request direction).
    pub request_bytes: u64,
    /// Bytes of the Arrow payload (response direction).
    pub response_bytes: u64,
    /// Core-seconds on the storage node.
    pub storage_cpu_s: f64,
    /// Core-seconds of decompression on the storage node.
    pub storage_decompress_s: f64,
    /// Compressed bytes read from the storage disk.
    pub disk_bytes: u64,
    /// Core-seconds on the frontend node.
    pub frontend_cpu_s: f64,
    /// Rows scanned in storage.
    pub rows_scanned: u64,
    /// Rows returned.
    pub rows_returned: u64,
    /// Row groups the late-materialized scan skipped after masking.
    pub row_groups_skipped: u64,
    /// Encoded bytes the scan never had to decode.
    pub decoded_bytes_avoided: u64,
}

/// A client bound to one OCS frontend.
#[derive(Debug, Clone)]
pub struct OcsClient {
    frontend: Arc<OcsFrontend>,
}

impl OcsClient {
    /// Bind to a frontend.
    pub fn new(frontend: Arc<OcsFrontend>) -> Self {
        OcsClient { frontend }
    }

    /// Execute `plan` against one object; the decoded response includes
    /// wire byte counts for the caller's network billing.
    pub fn execute(&self, plan: &Plan, bucket: &str, key: &str) -> OcsResult<OcsResponse> {
        let request = substrait_ir::encode(plan);
        let wire = self.frontend.handle(&request, bucket, key)?;
        let batches = columnar::ipc::decode_batches(&wire.arrow_bytes)
            .map_err(|e| crate::OcsError::Exec(format!("arrow decode: {e}")))?;
        Ok(OcsResponse {
            batches,
            request_bytes: request.len() as u64,
            response_bytes: wire.arrow_bytes.len() as u64,
            storage_cpu_s: wire.storage_cpu_s,
            storage_decompress_s: wire.storage_decompress_s,
            disk_bytes: wire.disk_bytes,
            frontend_cpu_s: wire.frontend_cpu_s,
            rows_scanned: wire.rows_scanned,
            rows_returned: wire.rows_returned,
            row_groups_skipped: wire.row_groups_skipped,
            decoded_bytes_avoided: wire.decoded_bytes_avoided,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ocs, OcsConfig};
    use columnar::agg::AggFunc;
    use columnar::prelude::*;
    use objstore::ObjectStore;
    use substrait_ir::{Expr, Measure, Rel};

    fn deployment() -> (Ocs, Schema) {
        let store = Arc::new(ObjectStore::new());
        store.create_bucket("lake").unwrap();
        let schema = Arc::new(Schema::new(vec![
            Field::new("g", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
        ]));
        let n = 10_000i64;
        let batch = RecordBatch::try_new(
            schema.clone(),
            vec![
                Arc::new(Array::from_i64((0..n).map(|i| i % 7).collect())),
                Arc::new(Array::from_f64((0..n).map(|i| i as f64).collect())),
            ],
        )
        .unwrap();
        let bytes = parq::writer::write_file(schema.clone(), &[batch], Default::default()).unwrap();
        store.put_object("lake", "t/0", bytes.into()).unwrap();
        (
            Ocs::new(store, OcsConfig::paper_testbed()),
            (*schema).clone(),
        )
    }

    #[test]
    fn aggregation_pushdown_collapses_response_bytes() {
        let (ocs, schema) = deployment();
        let client = ocs.client();

        // Full scan: ~10k rows cross the wire.
        let scan = Plan::new(Rel::read("t", schema.clone(), None));
        let full = client.execute(&scan, "lake", "t/0").unwrap();
        assert_eq!(full.rows_returned, 10_000);

        // Aggregation in storage: 7 rows cross the wire.
        let agg = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::read("t", schema, None)),
            group_by: vec![(Expr::field(0), "g".into())],
            measures: vec![Measure {
                func: AggFunc::Sum,
                arg: Some(Expr::field(1)),
                name: "s".into(),
            }],
        });
        let small = client.execute(&agg, "lake", "t/0").unwrap();
        assert_eq!(small.rows_returned, 7);
        assert!(
            small.response_bytes * 100 < full.response_bytes,
            "{} vs {}",
            small.response_bytes,
            full.response_bytes
        );
        // But the storage node did *more* compute for the aggregation.
        assert!(small.storage_cpu_s > full.storage_cpu_s);
        // Request (plan) bytes are tiny in both cases.
        assert!(full.request_bytes < 500);
    }

    #[test]
    fn rejected_plans_carry_diagnostics_across_the_error_frame() {
        let (ocs, schema) = deployment();
        // SUM over a group key of the wrong kind: measure arg is utf8-free
        // here, so use a field reference past the scan arity instead.
        let plan = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::read("t", schema, None)),
            group_by: vec![(Expr::field(0), "g".into())],
            measures: vec![Measure {
                func: AggFunc::Sum,
                arg: Some(Expr::field(9)),
                name: "s".into(),
            }],
        });
        let err = ocs.client().execute(&plan, "lake", "t/0").unwrap_err();
        let diag = err.diagnostic().expect("plan rejection is structured");
        assert_eq!(diag.code, substrait_ir::DiagCode::FieldOutOfRange);
        assert_eq!(diag.path, "root.measures[0].arg");
    }

    #[test]
    fn results_match_direct_execution() {
        let (ocs, schema) = deployment();
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", schema, None)),
            predicate: Expr::cmp(
                columnar::kernels::cmp::CmpOp::Lt,
                Expr::field(1),
                Expr::lit(Scalar::Float64(5.0)),
            ),
        });
        let resp = ocs.client().execute(&plan, "lake", "t/0").unwrap();
        let rows: usize = resp.batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(rows, 5);
    }
}
