//! The client side of the OCS "gRPC" boundary.
//!
//! In the paper, the connector's PageSourceProvider serializes Substrait
//! IR with protobuf and sends it over gRPC; OCS answers with a *stream*
//! of Arrow columnar payloads. Here the boundary is a function call, but
//! the data crossing it is *actual bytes in both directions* — the plan
//! is really encoded and every frame really serialized/deserialized — so
//! byte counters measure exactly what a network would carry.
//!
//! [`OcsClient::execute_stream`] is the streaming boundary: it returns a
//! [`BatchStream`] that pulls framed batches through a bounded in-flight
//! window (backpressure — at most `window` encoded frames are buffered
//! client-side at any moment), yielding decoded batches one at a time and
//! finishing with the trailer's [`ExecStats`]. [`OcsClient::execute`]
//! drains that stream for callers that want the whole result;
//! [`OcsClient::execute_buffered`] keeps the pre-streaming whole-payload
//! path alive as the A/B baseline.

use std::collections::VecDeque;
use std::sync::Arc;

use columnar::ipc::{Frame, FrameDecoder};
use columnar::{RecordBatch, SchemaRef};
use netsim::{ExecStats, FrameTiming};
use substrait_ir::Plan;

use crate::frontend::OcsFrontend;
use crate::stream::{WireFrame, WireStream};
use crate::{OcsError, OcsResult};

/// Default bounded in-flight frame window (see [`crate::OcsConfig`]).
pub const DEFAULT_FRAME_WINDOW: usize = 4;

/// One executed request, fully drained.
#[derive(Debug, Clone)]
pub struct OcsResponse {
    /// Result batches.
    pub batches: Vec<RecordBatch>,
    /// Bytes of the serialized plan (request direction).
    pub request_bytes: u64,
    /// Bytes of all response frames (response direction).
    pub response_bytes: u64,
    /// Consolidated execution statistics (from the stream trailer).
    pub stats: ExecStats,
    /// Number of wire frames in the response (schema + batches + trailer).
    pub frames: u64,
    /// Peak encoded bytes buffered client-side while draining.
    pub peak_buffered_bytes: u64,
    /// Per-frame simulated timings, in wire order.
    pub timings: Vec<FrameTiming>,
}

/// Summary of a fully-consumed [`BatchStream`].
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Consolidated execution statistics from the trailer frame.
    pub stats: ExecStats,
    /// Bytes of the serialized plan (request direction).
    pub request_bytes: u64,
    /// Bytes of all response frames (response direction).
    pub response_bytes: u64,
    /// Number of wire frames (schema + batches + trailer).
    pub frames: u64,
    /// Peak encoded bytes buffered client-side.
    pub peak_buffered_bytes: u64,
    /// Per-frame simulated timings, in wire order.
    pub timings: Vec<FrameTiming>,
}

/// A lazily-decoded streaming response: framed batches pulled through a
/// bounded in-flight window.
#[derive(Debug)]
pub struct BatchStream {
    producer: WireStream,
    window: usize,
    inflight: VecDeque<WireFrame>,
    inflight_bytes: u64,
    peak_buffered_bytes: u64,
    decoder: FrameDecoder,
    schema: Option<SchemaRef>,
    stats: Option<ExecStats>,
    request_bytes: u64,
    response_bytes: u64,
    frames: u64,
    timings: Vec<FrameTiming>,
    done: bool,
}

impl BatchStream {
    fn new(producer: WireStream, window: usize, request_bytes: u64) -> BatchStream {
        BatchStream {
            producer,
            window: window.max(1),
            inflight: VecDeque::new(),
            inflight_bytes: 0,
            peak_buffered_bytes: 0,
            decoder: FrameDecoder::new(),
            schema: None,
            stats: None,
            request_bytes,
            response_bytes: 0,
            frames: 0,
            timings: Vec::new(),
            done: false,
        }
    }

    /// Fill the in-flight window up to its bound (the producer encodes a
    /// frame only when a window slot is free — the backpressure model).
    fn fill_window(&mut self) {
        let m = obs::metrics();
        while self.inflight.len() < self.window {
            match self.producer.next_frame() {
                Some(f) => {
                    m.counter("ocs.rpc.frames").inc();
                    m.histogram("ocs.rpc.frame_bytes", obs::metrics::BYTES_BUCKETS)
                        .observe(f.bytes.len() as f64);
                    self.inflight_bytes += f.bytes.len() as u64;
                    self.response_bytes += f.bytes.len() as u64;
                    self.inflight.push_back(f);
                    self.peak_buffered_bytes = self.peak_buffered_bytes.max(self.inflight_bytes);
                    m.gauge("ocs.rpc.peak_buffered_bytes")
                        .record_max(self.inflight_bytes as i64);
                }
                None => break,
            }
        }
        // Leaving the refill with a full window means the producer ran out
        // of slots, not frames: the consumer is pacing the stream. Record
        // the stall so slow-query incidents can show where drains lagged.
        if self.inflight.len() >= self.window && !self.done {
            obs::flight().record(
                obs::FlightKind::BackpressureStall,
                self.window as u64,
                self.inflight.len() as u64,
                self.frames,
            );
        }
    }

    /// Schema of the stream (available after the first pull).
    pub fn schema(&self) -> Option<&SchemaRef> {
        self.schema.as_ref()
    }

    /// Pull the next decoded batch; `Ok(None)` after the trailer arrives.
    ///
    /// Truncated or corrupted frame sequences surface as structured
    /// [`OcsError::Exec`] — never a panic.
    pub fn next_batch(&mut self) -> OcsResult<Option<RecordBatch>> {
        loop {
            if self.done {
                return Ok(None);
            }
            self.fill_window();
            let Some(frame) = self.inflight.pop_front() else {
                // Producer exhausted without a trailer frame.
                self.done = true;
                return Err(OcsError::Exec(
                    "response stream ended without a trailer frame".into(),
                ));
            };
            self.inflight_bytes -= frame.bytes.len() as u64;
            self.frames += 1;
            self.decoder.feed(&frame.bytes);
            let decoded = self
                .decoder
                .next_frame()
                .map_err(|e| OcsError::Exec(format!("frame decode: {e}")))?;
            self.timings.push(frame.timing);
            match decoded {
                Some(Frame::Schema(s)) => {
                    self.schema = Some(s);
                    continue;
                }
                Some(Frame::Batch(b)) => return Ok(Some(b)),
                Some(Frame::Trailer(t)) => {
                    self.decoder
                        .finish()
                        .map_err(|e| OcsError::Exec(format!("frame decode: {e}")))?;
                    self.stats = Some(
                        ExecStats::decode(&t)
                            .map_err(|e| OcsError::Exec(format!("trailer decode: {e}")))?,
                    );
                    self.done = true;
                    return Ok(None);
                }
                None => {
                    // Each wire frame is complete by construction; a
                    // partial decode here means corruption upstream.
                    return Err(OcsError::Exec("incomplete frame in response stream".into()));
                }
            }
        }
    }

    /// Finish the stream and return its summary. Errors if the stream was
    /// not fully consumed to the trailer.
    pub fn finish(self) -> OcsResult<StreamSummary> {
        let Some(stats) = self.stats else {
            return Err(OcsError::Exec(
                "stream finished before the trailer frame was consumed".into(),
            ));
        };
        Ok(StreamSummary {
            stats,
            request_bytes: self.request_bytes,
            response_bytes: self.response_bytes,
            frames: self.frames,
            peak_buffered_bytes: self.peak_buffered_bytes,
            timings: self.timings,
        })
    }
}

/// A client bound to one OCS frontend.
#[derive(Debug, Clone)]
pub struct OcsClient {
    frontend: Arc<OcsFrontend>,
    window: usize,
}

impl OcsClient {
    /// Bind to a frontend with the default in-flight frame window.
    pub fn new(frontend: Arc<OcsFrontend>) -> Self {
        Self::with_window(frontend, DEFAULT_FRAME_WINDOW)
    }

    /// Bind to a frontend with an explicit in-flight frame window.
    pub fn with_window(frontend: Arc<OcsFrontend>, window: usize) -> Self {
        OcsClient {
            frontend,
            window: window.max(1),
        }
    }

    /// The configured in-flight frame window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Execute `plan` against one object, returning the streaming
    /// response: batches decoded one frame at a time through the bounded
    /// window.
    pub fn execute_stream(&self, plan: &Plan, bucket: &str, key: &str) -> OcsResult<BatchStream> {
        let request = substrait_ir::encode(plan);
        let wire = self.frontend.handle_stream(&request, bucket, key)?;
        Ok(BatchStream::new(wire, self.window, request.len() as u64))
    }

    /// Execute `plan` and drain the stream into one response.
    pub fn execute(&self, plan: &Plan, bucket: &str, key: &str) -> OcsResult<OcsResponse> {
        let mut stream = self.execute_stream(plan, bucket, key)?;
        let mut batches = Vec::new();
        while let Some(b) = stream.next_batch()? {
            batches.push(b);
        }
        let summary = stream.finish()?;
        Ok(OcsResponse {
            batches,
            request_bytes: summary.request_bytes,
            response_bytes: summary.response_bytes,
            stats: summary.stats,
            frames: summary.frames,
            peak_buffered_bytes: summary.peak_buffered_bytes,
            timings: summary.timings,
        })
    }

    /// Execute `plan` over the pre-streaming whole-payload boundary (the
    /// A/B baseline: one monolithic Arrow payload, no overlap, peak
    /// buffering equal to the full response).
    pub fn execute_buffered(&self, plan: &Plan, bucket: &str, key: &str) -> OcsResult<OcsResponse> {
        let request = substrait_ir::encode(plan);
        let wire = self.frontend.handle(&request, bucket, key)?;
        let batches = columnar::ipc::decode_batches(&wire.arrow_bytes)
            .map_err(|e| OcsError::Exec(format!("arrow decode: {e}")))?;
        let response_bytes = wire.arrow_bytes.len() as u64;
        // The whole result is one "frame" that buffers everything.
        let timing = FrameTiming {
            bytes: response_bytes,
            disk_bytes: wire.stats.disk_bytes,
            decompress_s: wire.stats.storage_decompress_s,
            storage_s: wire.stats.storage_cpu_s,
            frontend_s: wire.stats.frontend_cpu_s,
            compute_s: 0.0,
            is_batch: true,
            input_chunks: 1,
        };
        Ok(OcsResponse {
            batches,
            request_bytes: request.len() as u64,
            response_bytes,
            stats: wire.stats,
            frames: 1,
            peak_buffered_bytes: response_bytes,
            timings: vec![timing],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ocs, OcsConfig};
    use columnar::agg::AggFunc;
    use columnar::prelude::*;
    use objstore::ObjectStore;
    use substrait_ir::{Expr, Measure, Rel};

    fn deployment() -> (Ocs, Schema) {
        let store = Arc::new(ObjectStore::new());
        store.create_bucket("lake").unwrap();
        let schema = Arc::new(Schema::new(vec![
            Field::new("g", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
        ]));
        let n = 10_000i64;
        let batch = RecordBatch::try_new(
            schema.clone(),
            vec![
                Arc::new(Array::from_i64((0..n).map(|i| i % 7).collect())),
                Arc::new(Array::from_f64((0..n).map(|i| i as f64).collect())),
            ],
        )
        .unwrap();
        // Small row groups so scans produce many batches (= many frames).
        let bytes = parq::writer::write_file(
            schema.clone(),
            &[batch],
            parq::WriteOptions {
                row_group_rows: 1024,
                ..Default::default()
            },
        )
        .unwrap();
        store.put_object("lake", "t/0", bytes.into()).unwrap();
        // Cache tiers off: several tests here re-execute the same plan
        // against the same object and compare cost ledgers, which warm
        // caches would legitimately change.
        (
            Ocs::new(store, OcsConfig::paper_testbed_uncached()),
            (*schema).clone(),
        )
    }

    /// Same data as [`deployment`], but with the near-storage cache tiers
    /// on (paper-testbed budgets).
    fn cached_deployment() -> (Arc<ObjectStore>, Ocs, Schema) {
        let store = Arc::new(ObjectStore::new());
        store.create_bucket("lake").unwrap();
        let schema = Arc::new(Schema::new(vec![
            Field::new("g", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
        ]));
        let n = 10_000i64;
        let batch = RecordBatch::try_new(
            schema.clone(),
            vec![
                Arc::new(Array::from_i64((0..n).map(|i| i % 7).collect())),
                Arc::new(Array::from_f64((0..n).map(|i| i as f64).collect())),
            ],
        )
        .unwrap();
        let bytes = parq::writer::write_file(
            schema.clone(),
            &[batch],
            parq::WriteOptions {
                row_group_rows: 1024,
                ..Default::default()
            },
        )
        .unwrap();
        store.put_object("lake", "t/0", bytes.into()).unwrap();
        let ocs = Ocs::new(store.clone(), OcsConfig::paper_testbed());
        (store, ocs, (*schema).clone())
    }

    #[test]
    fn warm_repeat_hits_result_cache_at_zero_storage_cost() {
        let (_, ocs, schema) = cached_deployment();
        let client = ocs.client();
        let plan = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::read("t", schema, None)),
            group_by: vec![(Expr::field(0), "g".into())],
            measures: vec![Measure {
                func: AggFunc::Sum,
                arg: Some(Expr::field(1)),
                name: "s".into(),
            }],
        });
        let cold = client.execute(&plan, "lake", "t/0").unwrap();
        let warm = client.execute(&plan, "lake", "t/0").unwrap();

        assert_eq!(cold.stats.result_cache_hits, 0);
        assert_eq!(warm.stats.result_cache_hits, 1);
        assert!(cold.stats.storage_cpu_s > 0.0);
        assert_eq!(warm.stats.storage_cpu_s, 0.0, "hit replays for free");
        assert_eq!(warm.stats.disk_bytes, 0);
        assert!(
            warm.stats.cache_bytes_avoided >= cold.stats.disk_bytes + cold.stats.rows_scanned,
            "hit reports what the cold run paid"
        );
        // Identical rows either way.
        assert_eq!(warm.stats.rows_returned, cold.stats.rows_returned);
        let rows = |batches: &[RecordBatch]| -> Vec<Vec<Scalar>> {
            batches
                .iter()
                .flat_map(|b| (0..b.num_rows()).map(|r| b.row(r)).collect::<Vec<_>>())
                .collect()
        };
        assert_eq!(rows(&warm.batches), rows(&cold.batches));
    }

    #[test]
    fn distinct_plans_share_the_row_group_cache() {
        let (_, ocs, schema) = cached_deployment();
        let client = ocs.client();
        // Two different plans over the same columns: the second misses the
        // result cache but scans entirely from the decoded chunk cache.
        let scan = Plan::new(Rel::read("t", schema.clone(), None));
        let agg = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::read("t", schema, None)),
            group_by: vec![(Expr::field(0), "g".into())],
            measures: vec![Measure {
                func: AggFunc::Sum,
                arg: Some(Expr::field(1)),
                name: "s".into(),
            }],
        });
        let cold = client.execute(&scan, "lake", "t/0").unwrap();
        assert!(cold.stats.rg_cache_misses > 0);
        assert_eq!(cold.stats.rg_cache_hits, 0);

        let warm = client.execute(&agg, "lake", "t/0").unwrap();
        assert_eq!(warm.stats.result_cache_hits, 0, "different fingerprint");
        assert!(warm.stats.rg_cache_hits > 0, "chunks reused across plans");
        assert_eq!(warm.stats.rg_cache_misses, 0, "every chunk was resident");
        assert_eq!(warm.stats.disk_bytes, 0, "no disk traffic on a warm scan");
        assert!(warm.stats.cache_bytes_avoided > 0);
        assert!(
            warm.stats.storage_cpu_s < cold.stats.storage_cpu_s,
            "warm aggregation skips decode: {} vs {}",
            warm.stats.storage_cpu_s,
            cold.stats.storage_cpu_s
        );
    }

    #[test]
    fn writes_invalidate_both_cache_tiers() {
        let (store, ocs, schema) = cached_deployment();
        let client = ocs.client();
        let plan = Plan::new(Rel::read("t", schema.clone(), None));
        let before = client.execute(&plan, "lake", "t/0").unwrap();
        assert_eq!(before.stats.rows_returned, 10_000);
        // Warm it, then overwrite the object with 5 rows.
        client.execute(&plan, "lake", "t/0").unwrap();
        let schema = Arc::new(schema);
        let batch = RecordBatch::try_new(
            schema.clone(),
            vec![
                Arc::new(Array::from_i64(vec![1, 2, 3, 4, 5])),
                Arc::new(Array::from_f64(vec![1.0, 2.0, 3.0, 4.0, 5.0])),
            ],
        )
        .unwrap();
        let bytes = parq::writer::write_file(schema.clone(), &[batch], Default::default()).unwrap();
        store.put_object("lake", "t/0", bytes.into()).unwrap();

        let after = client.execute(&plan, "lake", "t/0").unwrap();
        assert_eq!(after.stats.rows_returned, 5, "no stale cached result");
        assert_eq!(after.stats.result_cache_hits, 0);
        assert_eq!(after.stats.rg_cache_hits, 0, "chunk keys carry the version");
        assert!(after.stats.disk_bytes > 0);
    }

    #[test]
    fn aggregation_pushdown_collapses_response_bytes() {
        let (ocs, schema) = deployment();
        let client = ocs.client();

        // Full scan: ~10k rows cross the wire.
        let scan = Plan::new(Rel::read("t", schema.clone(), None));
        let full = client.execute(&scan, "lake", "t/0").unwrap();
        assert_eq!(full.stats.rows_returned, 10_000);

        // Aggregation in storage: 7 rows cross the wire.
        let agg = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::read("t", schema, None)),
            group_by: vec![(Expr::field(0), "g".into())],
            measures: vec![Measure {
                func: AggFunc::Sum,
                arg: Some(Expr::field(1)),
                name: "s".into(),
            }],
        });
        let small = client.execute(&agg, "lake", "t/0").unwrap();
        assert_eq!(small.stats.rows_returned, 7);
        assert!(
            small.response_bytes * 100 < full.response_bytes,
            "{} vs {}",
            small.response_bytes,
            full.response_bytes
        );
        // But the storage node did *more* compute for the aggregation.
        assert!(small.stats.storage_cpu_s > full.stats.storage_cpu_s);
        // Request (plan) bytes are tiny in both cases.
        assert!(full.request_bytes < 500);
    }

    #[test]
    fn rejected_plans_carry_diagnostics_across_the_error_frame() {
        let (ocs, schema) = deployment();
        // SUM over a group key of the wrong kind: measure arg is utf8-free
        // here, so use a field reference past the scan arity instead.
        let plan = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::read("t", schema, None)),
            group_by: vec![(Expr::field(0), "g".into())],
            measures: vec![Measure {
                func: AggFunc::Sum,
                arg: Some(Expr::field(9)),
                name: "s".into(),
            }],
        });
        let err = ocs.client().execute(&plan, "lake", "t/0").unwrap_err();
        let diag = err.diagnostic().expect("plan rejection is structured");
        assert_eq!(diag.code, substrait_ir::DiagCode::FieldOutOfRange);
        assert_eq!(diag.path, "root.measures[0].arg");
    }

    #[test]
    fn results_match_direct_execution() {
        let (ocs, schema) = deployment();
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", schema, None)),
            predicate: Expr::cmp(
                columnar::kernels::cmp::CmpOp::Lt,
                Expr::field(1),
                Expr::lit(Scalar::Float64(5.0)),
            ),
        });
        let resp = ocs.client().execute(&plan, "lake", "t/0").unwrap();
        let rows: usize = resp.batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(rows, 5);
    }

    #[test]
    fn streaming_matches_buffered_batch_for_batch() {
        let (ocs, schema) = deployment();
        let client = ocs.client();
        let plan = Plan::new(Rel::read("t", schema, None));
        let buffered = client.execute_buffered(&plan, "lake", "t/0").unwrap();
        let streamed = client.execute(&plan, "lake", "t/0").unwrap();
        assert_eq!(streamed.batches.len(), buffered.batches.len());
        for (a, b) in streamed.batches.iter().zip(&buffered.batches) {
            assert_eq!(a.num_rows(), b.num_rows());
            assert_eq!(a.schema(), b.schema());
        }
        assert_eq!(streamed.stats.rows_returned, buffered.stats.rows_returned);
        assert_eq!(streamed.stats.disk_bytes, buffered.stats.disk_bytes);
        // Framing adds per-frame headers but stays the same order of
        // magnitude as the monolithic payload.
        assert!(streamed.response_bytes >= buffered.response_bytes);
        assert!(streamed.response_bytes < buffered.response_bytes * 2);
    }

    #[test]
    fn bounded_window_caps_client_buffering() {
        let (ocs, schema) = deployment();
        let plan = Plan::new(Rel::read("t", schema.clone(), None));
        let wide = OcsClient::with_window(ocs.frontend().clone(), 1024);
        let narrow = OcsClient::with_window(ocs.frontend().clone(), 2);
        let a = wide.execute(&plan, "lake", "t/0").unwrap();
        let b = narrow.execute(&plan, "lake", "t/0").unwrap();
        assert!(a.frames > 4, "scan should produce many frames");
        assert_eq!(a.frames, b.frames);
        assert!(
            b.peak_buffered_bytes < a.peak_buffered_bytes,
            "narrow window {} must buffer less than wide {}",
            b.peak_buffered_bytes,
            a.peak_buffered_bytes
        );
        // And far less than the whole response.
        assert!(b.peak_buffered_bytes * 2 < b.response_bytes);
    }

    #[test]
    fn stream_timings_cover_all_stats() {
        let (ocs, schema) = deployment();
        let plan = Plan::new(Rel::read("t", schema, None));
        let resp = ocs.client().execute(&plan, "lake", "t/0").unwrap();
        assert_eq!(resp.timings.len() as u64, resp.frames);
        let storage: f64 = resp.timings.iter().map(|t| t.storage_s).sum();
        let frontend: f64 = resp.timings.iter().map(|t| t.frontend_s).sum();
        let disk: u64 = resp.timings.iter().map(|t| t.disk_bytes).sum();
        let bytes: u64 = resp.timings.iter().map(|t| t.bytes).sum();
        assert!((storage - resp.stats.storage_cpu_s).abs() < 1e-9);
        assert!((frontend - resp.stats.frontend_cpu_s).abs() < 1e-9);
        assert_eq!(disk, resp.stats.disk_bytes);
        assert_eq!(bytes, resp.response_bytes);
        // First and last frames are schema/trailer, not batches.
        assert!(!resp.timings[0].is_batch);
        assert!(!resp.timings[resp.timings.len() - 1].is_batch);
    }
}
