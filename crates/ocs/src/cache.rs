//! The near-storage cache tiers a [`crate::StorageNode`] holds.
//!
//! Two tiers, both byte-budgeted LRUs from the `cache` crate:
//!
//! * **decoded row-group cache** — keyed by
//!   `(bucket, key, object version, row group, file column)`, holding the
//!   decoded [`Array`] of one column chunk. A warm scan skips the disk
//!   read, the decompression and the decode work for that chunk, and the
//!   cost ledger skips the corresponding lanes so `simulated_seconds`
//!   reflects the hit honestly.
//! * **pushdown-result cache** — keyed by the object identity plus a
//!   stable FNV-1a fingerprint of the canonical Substrait encoding of the
//!   verified plan. A hit replays the whole response (batches + the byte
//!   accounting of the cold run) without touching the executor.
//!
//! Invalidation is by construction: the object's write version (bumped by
//! every `objstore::put_object`) is part of both keys, so a write can
//! never be served stale data. [`NodeCaches::observe_version`]
//! additionally purges superseded entries eagerly so dead versions don't
//! squat in the budget until eviction reaches them.

use std::collections::HashMap;
use std::sync::Arc;

use cache::{CacheStats, SharedByteLru};
use columnar::{Array, RecordBatch};
use sync::DebugMutex;

/// Key of one decoded column chunk.
pub type ChunkKey = (String, String, u64, usize, usize);

/// Key of one cached pushdown result: object identity + plan fingerprint.
pub type ResultKey = (String, String, u64, u64);

/// A cached pushdown result: the cold run's batches plus enough of its
/// byte accounting to report what a hit avoided.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Result batches of the cold execution.
    pub batches: Vec<RecordBatch>,
    /// Rows the cold run returned.
    pub rows_emitted: u64,
    /// Disk + decode bytes the cold run paid (what a hit avoids).
    pub bytes_avoided: u64,
}

/// The identity of the object a request executes against, threaded into
/// the executor so chunk-cache keys can be formed without re-lookups.
#[derive(Debug, Clone)]
pub struct ObjectId {
    /// Bucket name.
    pub bucket: String,
    /// Object key.
    pub key: String,
    /// Write version at request time.
    pub version: u64,
}

/// Both cache tiers of one storage node. Cloning shares the underlying
/// caches (handles, not copies).
#[derive(Debug, Clone)]
pub struct NodeCaches {
    /// Decoded row-group (column chunk) cache.
    pub row_group: SharedByteLru<ChunkKey, Arc<Array>>,
    /// Pushdown-result cache.
    pub result: SharedByteLru<ResultKey, Arc<CachedResult>>,
    /// Last write version seen per object, to purge superseded entries.
    seen: Arc<DebugMutex<HashMap<(String, String), u64>>>,
}

impl NodeCaches {
    /// Caches with the given byte budgets (zero disables a tier).
    pub fn new(row_group_bytes: u64, result_bytes: u64) -> NodeCaches {
        NodeCaches {
            row_group: SharedByteLru::named(row_group_bytes, "ocs.cache.row_group"),
            result: SharedByteLru::named(result_bytes, "ocs.cache.result"),
            seen: Arc::new(DebugMutex::named("ocs.cache.seen", HashMap::new())),
        }
    }

    /// Both tiers off — the cold-only configuration.
    pub fn disabled() -> NodeCaches {
        NodeCaches::new(0, 0)
    }

    /// Whether either tier can hold anything.
    pub fn is_enabled(&self) -> bool {
        self.row_group.is_enabled() || self.result.is_enabled()
    }

    /// Note that `bucket`/`key` is now at `version`; entries cached for
    /// any other version of the object are purged (a write-through
    /// invalidation — version keys already guarantee they could never
    /// hit, this just frees their budget immediately).
    pub fn observe_version(&self, bucket: &str, key: &str, version: u64) {
        let mut seen = self.seen.lock();
        let slot = seen
            .entry((bucket.to_string(), key.to_string()))
            .or_insert(version);
        if *slot == version {
            return;
        }
        *slot = version;
        drop(seen);
        let rg_before = self.row_group.len();
        let result_before = self.result.len();
        self.row_group
            .retain(|(b, k, v, _, _)| !(b == bucket && k == key && *v != version));
        self.result
            .retain(|(b, k, v, _)| !(b == bucket && k == key && *v != version));
        let rg_purged = rg_before.saturating_sub(self.row_group.len()) as u64;
        let result_purged = result_before.saturating_sub(self.result.len()) as u64;
        if rg_purged + result_purged > 0 {
            obs::flight().record(
                obs::FlightKind::VersionPurge,
                version,
                rg_purged,
                result_purged,
            );
        }
    }

    /// Combined counter snapshot (row-group tier, result tier).
    pub fn stats(&self) -> (CacheStats, CacheStats) {
        (self.row_group.stats(), self.result.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_version_purges_superseded_entries() {
        let caches = NodeCaches::new(1 << 20, 1 << 20);
        let k1: ChunkKey = ("lake".into(), "t/0".into(), 1, 0, 0);
        let k2: ChunkKey = ("lake".into(), "t/1".into(), 1, 0, 0);
        caches
            .row_group
            .insert(k1.clone(), Arc::new(Array::from_i64(vec![1])), 64);
        caches
            .row_group
            .insert(k2.clone(), Arc::new(Array::from_i64(vec![2])), 64);
        caches.result.insert(
            ("lake".into(), "t/0".into(), 1, 99),
            Arc::new(CachedResult {
                batches: vec![],
                rows_emitted: 0,
                bytes_avoided: 0,
            }),
            64,
        );
        caches.observe_version("lake", "t/0", 1);
        assert_eq!(caches.row_group.len(), 2, "same version purges nothing");
        caches.observe_version("lake", "t/0", 7);
        assert!(caches.row_group.get(&k1).is_none(), "stale version purged");
        assert!(
            caches.row_group.get(&k2).is_some(),
            "other object untouched"
        );
        assert!(caches.result.is_empty(), "stale result purged");
    }

    #[test]
    fn disabled_caches_reject_everything() {
        let caches = NodeCaches::disabled();
        assert!(!caches.is_enabled());
        assert!(!caches.row_group.insert(
            ("b".into(), "k".into(), 1, 0, 0),
            Arc::new(Array::from_i64(vec![1])),
            8
        ));
    }
}
