//! The embedded SQL executor: interprets Substrait plans over parq objects
//! with vectorized columnar kernels.
//!
//! This is OCS's own engine, independent of the `dsq` query engine (as in
//! the paper, where OCS embeds its own SQL engine and Presto merely ships
//! plans to it). It shares the low-level kernels of the `columnar` crate
//! and the work-unit cost vocabulary of `netsim::CostParams`.

use std::collections::HashMap;
use std::sync::Arc;

use columnar::agg::AggState;
use columnar::builder::ArrayBuilder;
use columnar::kernels::{arith, boolean, cast, cmp, selection};
use columnar::prelude::*;
use columnar::sort::{self, SortKey};
use netsim::{CostParams, Work};
use parq::{ParqReader, RangePredicate};
use substrait_ir::{Expr, Measure, Plan, Rel};

use crate::{OcsError, OcsResult};

/// Resource consumption of one in-storage execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Operator work, by efficiency channel.
    pub work: Work,
    /// Compressed bytes read from disk.
    pub disk_bytes: u64,
    /// Uncompressed bytes decoded.
    pub uncompressed_bytes: u64,
    /// Rows scanned (after row-group pruning).
    pub rows_scanned: u64,
    /// Rows emitted.
    pub rows_emitted: u64,
}

/// Evaluate a Substrait expression against a batch.
pub fn eval_expr(e: &Expr, batch: &RecordBatch) -> OcsResult<Array> {
    let err = |m: String| OcsError::Exec(m);
    Ok(match e {
        Expr::FieldRef(i) => {
            if *i >= batch.num_columns() {
                return Err(err(format!("field #{i} out of range")));
            }
            batch.column(*i).as_ref().clone()
        }
        Expr::Literal(s) => {
            let dt = s.data_type().unwrap_or(DataType::Boolean);
            Array::from_scalar(s, dt, batch.num_rows()).map_err(|e| err(e.to_string()))?
        }
        Expr::Cmp { op, left, right } => {
            if let Expr::Literal(s) = right.as_ref() {
                let l = eval_expr(left, batch)?;
                return Ok(Array::Boolean(
                    cmp::compare_scalar(&l, s, *op).map_err(|e| err(e.to_string()))?,
                ));
            }
            let (l, r) = (eval_expr(left, batch)?, eval_expr(right, batch)?);
            Array::Boolean(cmp::compare(&l, &r, *op).map_err(|e| err(e.to_string()))?)
        }
        Expr::Arith { op, left, right } => {
            if let Expr::Literal(s) = right.as_ref() {
                let l = eval_expr(left, batch)?;
                return arith::arith_scalar(&l, s, *op).map_err(|e| err(e.to_string()));
            }
            let (l, r) = (eval_expr(left, batch)?, eval_expr(right, batch)?);
            arith::arith(&l, &r, *op).map_err(|e| err(e.to_string()))?
        }
        Expr::And(a, b) => {
            let (x, y) = (eval_expr(a, batch)?, eval_expr(b, batch)?);
            Array::Boolean(
                boolean::and(
                    x.as_bool().map_err(|e| err(e.to_string()))?,
                    y.as_bool().map_err(|e| err(e.to_string()))?,
                )
                .map_err(|e| err(e.to_string()))?,
            )
        }
        Expr::Or(a, b) => {
            let (x, y) = (eval_expr(a, batch)?, eval_expr(b, batch)?);
            Array::Boolean(
                boolean::or(
                    x.as_bool().map_err(|e| err(e.to_string()))?,
                    y.as_bool().map_err(|e| err(e.to_string()))?,
                )
                .map_err(|e| err(e.to_string()))?,
            )
        }
        Expr::Not(x) => {
            let v = eval_expr(x, batch)?;
            Array::Boolean(boolean::not(v.as_bool().map_err(|e| err(e.to_string()))?))
        }
        Expr::Between { expr, lo, hi } => {
            if let (Expr::Literal(l), Expr::Literal(h)) = (lo.as_ref(), hi.as_ref()) {
                let x = eval_expr(expr, batch)?;
                return Ok(Array::Boolean(
                    cmp::between_scalar(&x, l, h).map_err(|e| err(e.to_string()))?,
                ));
            }
            let x = eval_expr(expr, batch)?;
            let l = eval_expr(lo, batch)?;
            let h = eval_expr(hi, batch)?;
            let ge = cmp::compare(&x, &l, cmp::CmpOp::GtEq).map_err(|e| err(e.to_string()))?;
            let le = cmp::compare(&x, &h, cmp::CmpOp::LtEq).map_err(|e| err(e.to_string()))?;
            Array::Boolean(boolean::and(&ge, &le).map_err(|e| err(e.to_string()))?)
        }
        Expr::Cast { expr, to } => {
            let x = eval_expr(expr, batch)?;
            cast::cast(&x, *to).map_err(|e| err(e.to_string()))?
        }
        Expr::Negate(x) => {
            let v = eval_expr(x, batch)?;
            arith::negate(&v).map_err(|e| err(e.to_string()))?
        }
        Expr::IsNull(x) => {
            let v = eval_expr(x, batch)?;
            Array::Boolean(cmp::is_null(&v))
        }
        Expr::IsNotNull(x) => {
            let v = eval_expr(x, batch)?;
            Array::Boolean(cmp::is_not_null(&v))
        }
    })
}

/// Extract row-group-prunable range predicates from a filter expression
/// (top-level conjunction of `field op literal` / `field BETWEEN a AND b`).
fn prunable(e: &Expr, out: &mut Vec<RangePredicate>) {
    match e {
        Expr::And(a, b) => {
            prunable(a, out);
            prunable(b, out);
        }
        Expr::Cmp { op, left, right } => {
            if let (Expr::FieldRef(col), Expr::Literal(v)) = (left.as_ref(), right.as_ref()) {
                out.push(RangePredicate {
                    column: *col,
                    op: *op,
                    value: v.clone(),
                });
            } else if let (Expr::Literal(v), Expr::FieldRef(col)) =
                (left.as_ref(), right.as_ref())
            {
                out.push(RangePredicate {
                    column: *col,
                    op: op.flip(),
                    value: v.clone(),
                });
            }
        }
        Expr::Between { expr, lo, hi } => {
            if let (Expr::FieldRef(col), Expr::Literal(l), Expr::Literal(h)) =
                (expr.as_ref(), lo.as_ref(), hi.as_ref())
            {
                out.push(RangePredicate {
                    column: *col,
                    op: cmp::CmpOp::GtEq,
                    value: l.clone(),
                });
                out.push(RangePredicate {
                    column: *col,
                    op: cmp::CmpOp::LtEq,
                    value: h.clone(),
                });
            }
        }
        _ => {}
    }
}

fn key_bytes(out: &mut Vec<u8>, s: &Scalar) {
    match s {
        Scalar::Null => out.push(0),
        Scalar::Int64(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Scalar::Float64(v) => {
            out.push(2);
            let v = if *v == 0.0 { 0.0 } else { *v };
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Scalar::Boolean(v) => out.extend_from_slice(&[3, *v as u8]),
        Scalar::Utf8(v) => {
            out.push(4);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v.as_bytes());
        }
        Scalar::Date32(v) => {
            out.push(5);
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// The embedded executor over one parq object.
pub struct Executor<'a> {
    reader: &'a ParqReader,
    cost: &'a CostParams,
    stats: ExecStats,
}

impl<'a> Executor<'a> {
    /// New executor over an open object.
    pub fn new(reader: &'a ParqReader, cost: &'a CostParams) -> Self {
        Executor {
            reader,
            cost,
            stats: ExecStats::default(),
        }
    }

    /// Execute `plan`, returning result batches and resource stats.
    pub fn run(mut self, plan: &Plan) -> OcsResult<(Vec<RecordBatch>, ExecStats)> {
        plan.validate().map_err(|e| OcsError::Plan(e.to_string()))?;
        let batches = self.run_rel(&plan.root)?;
        self.stats.rows_emitted = batches.iter().map(|b| b.num_rows() as u64).sum();
        Ok((batches, self.stats))
    }

    fn run_rel(&mut self, rel: &Rel) -> OcsResult<Vec<RecordBatch>> {
        match rel {
            Rel::Read { projection, .. } => self.run_read(projection.as_deref(), &[]),
            Rel::Filter { input, predicate } => {
                // Scan-adjacent filters benefit from row-group pruning.
                if let Rel::Read { projection, .. } = input.as_ref() {
                    let mut preds = Vec::new();
                    // Pruning predicates are in terms of the *read output*
                    // (post-projection) — remap to file columns.
                    prunable(predicate, &mut preds);
                    let remapped: Vec<RangePredicate> = match projection {
                        None => preds,
                        Some(p) => preds
                            .into_iter()
                            .filter_map(|rp| {
                                p.get(rp.column).map(|&file_col| RangePredicate {
                                    column: file_col,
                                    ..rp
                                })
                            })
                            .collect(),
                    };
                    let batches = self.run_read(projection.as_deref(), &remapped)?;
                    return self.apply_filter(batches, predicate);
                }
                let batches = self.run_rel(input)?;
                self.apply_filter(batches, predicate)
            }
            Rel::Project { input, exprs } => {
                let batches = self.run_rel(input)?;
                let weight: u32 = exprs.iter().map(|(e, _)| e.op_weight()).sum();
                let mut out = Vec::with_capacity(batches.len());
                for b in &batches {
                    self.stats.work.add(Work::expr(self.cost.eval_work(b.num_rows() as u64, weight.max(1))));
                    let fields: Vec<Field> = {
                        let input_schema = b.schema();
                        exprs
                            .iter()
                            .map(|(e, n)| {
                                let dt = e
                                    .output_type(input_schema)
                                    .map_err(|e| OcsError::Plan(e.to_string()))?;
                                Ok(Field::new(n.clone(), dt, true))
                            })
                            .collect::<OcsResult<_>>()?
                    };
                    let columns = exprs
                        .iter()
                        .map(|(e, _)| eval_expr(e, b).map(Arc::new))
                        .collect::<OcsResult<Vec<_>>>()?;
                    out.push(
                        RecordBatch::try_new(Arc::new(Schema::new(fields)), columns)
                            .map_err(|e| OcsError::Exec(e.to_string()))?,
                    );
                }
                Ok(out)
            }
            Rel::Aggregate {
                input,
                group_by,
                measures,
            } => {
                let input_schema = input
                    .output_schema()
                    .map_err(|e| OcsError::Plan(e.to_string()))?;
                let batches = self.run_rel(input)?;
                self.aggregate(&input_schema, &batches, group_by, measures)
            }
            Rel::Sort { input, keys } => {
                let batches = self.run_rel(input)?;
                if batches.is_empty() {
                    return Ok(batches);
                }
                let (all, cols) = self.sortable(&batches, keys)?;
                self.stats.work.add(Work::vector(self.cost.sort_work(all.num_rows() as u64, keys.len())));
                let sorted =
                    sort::sort_batch(&all, &cols).map_err(|e| OcsError::Exec(e.to_string()))?;
                Ok(vec![sorted])
            }
            Rel::Fetch {
                input,
                offset,
                limit,
            } => {
                // Fetch directly over Sort is the top-N operator.
                if let Rel::Sort { input: si, keys } = input.as_ref() {
                    let batches = self.run_rel(si)?;
                    if batches.is_empty() {
                        return Ok(batches);
                    }
                    let (all, cols) = self.sortable(&batches, keys)?;
                    let n = (*offset + *limit) as usize;
                    self.stats.work.add(Work::vector(self.cost.topn_work(
                        all.num_rows() as u64,
                        keys.len(),
                        *offset + *limit,
                    )));
                    let top = sort::top_n(&all, &cols, n)
                        .map_err(|e| OcsError::Exec(e.to_string()))?;
                    return self.apply_offset_limit(vec![top], *offset, *limit);
                }
                let batches = self.run_rel(input)?;
                self.apply_offset_limit(batches, *offset, *limit)
            }
        }
    }

    fn run_read(
        &mut self,
        projection: Option<&[usize]>,
        prune: &[RangePredicate],
    ) -> OcsResult<Vec<RecordBatch>> {
        let groups = self.reader.prune_row_groups(prune);
        let indices: Vec<usize> = match projection {
            Some(p) => p.to_vec(),
            None => (0..self.reader.schema().len()).collect(),
        };
        let mut out = Vec::with_capacity(groups.len());
        for rg in groups {
            self.stats.disk_bytes += self
                .reader
                .projected_compressed_bytes(rg, &indices)
                .map_err(|e| OcsError::Exec(e.to_string()))?;
            let batch = self
                .reader
                .read_row_group(rg, Some(&indices))
                .map_err(|e| OcsError::Exec(e.to_string()))?;
            self.stats.uncompressed_bytes += batch.byte_size() as u64;
            self.stats.rows_scanned += batch.num_rows() as u64;
            self.stats.work.add(Work::decode(batch.byte_size() as f64 * self.cost.byte_decode));
            out.push(batch);
        }
        Ok(out)
    }

    fn apply_filter(
        &mut self,
        batches: Vec<RecordBatch>,
        predicate: &Expr,
    ) -> OcsResult<Vec<RecordBatch>> {
        let weight = predicate.op_weight();
        let mut out = Vec::with_capacity(batches.len());
        for b in &batches {
            self.stats.work.add(Work::vector(self.cost.eval_work(b.num_rows() as u64, weight)));
            let mask = eval_expr(predicate, b)?;
            let mask = mask.as_bool().map_err(|e| OcsError::Exec(e.to_string()))?;
            let f = selection::filter_batch(b, mask).map_err(|e| OcsError::Exec(e.to_string()))?;
            if f.num_rows() > 0 {
                out.push(f);
            }
        }
        Ok(out)
    }

    fn sortable(
        &self,
        batches: &[RecordBatch],
        keys: &[substrait_ir::SortField],
    ) -> OcsResult<(RecordBatch, Vec<SortKey>)> {
        let all = RecordBatch::concat(batches).map_err(|e| OcsError::Exec(e.to_string()))?;
        let cols = keys
            .iter()
            .map(|k| match &k.expr {
                Expr::FieldRef(i) => Ok(SortKey {
                    column: *i,
                    ascending: k.ascending,
                    nulls_first: k.nulls_first,
                }),
                other => Err(OcsError::Plan(format!(
                    "sort keys must be field references, got {other}"
                ))),
            })
            .collect::<OcsResult<Vec<_>>>()?;
        Ok((all, cols))
    }

    fn apply_offset_limit(
        &mut self,
        batches: Vec<RecordBatch>,
        offset: u64,
        limit: u64,
    ) -> OcsResult<Vec<RecordBatch>> {
        if batches.is_empty() {
            return Ok(batches);
        }
        let all = RecordBatch::concat(&batches).map_err(|e| OcsError::Exec(e.to_string()))?;
        let start = (offset as usize).min(all.num_rows());
        let end = (start + limit as usize).min(all.num_rows());
        let idx: Vec<usize> = (start..end).collect();
        let out =
            selection::take_batch(&all, &idx).map_err(|e| OcsError::Exec(e.to_string()))?;
        Ok(vec![out])
    }

    fn aggregate(
        &mut self,
        input_schema: &Schema,
        batches: &[RecordBatch],
        group_by: &[(Expr, String)],
        measures: &[Measure],
    ) -> OcsResult<Vec<RecordBatch>> {
        let err = |e: columnar::ColumnarError| OcsError::Exec(e.to_string());
        let plan_err = |e: substrait_ir::IrError| OcsError::Plan(e.to_string());
        let mut groups: HashMap<Vec<u8>, (Vec<Scalar>, Vec<AggState>)> = HashMap::new();
        let mut order: Vec<Vec<u8>> = Vec::new();

        // Output schema and per-measure state types, from the *plan*
        // (usable even when the filtered input is empty).
        let mut fields = Vec::with_capacity(group_by.len() + measures.len());
        for (e, n) in group_by {
            fields.push(Field::new(
                n.clone(),
                e.output_type(input_schema).map_err(plan_err)?,
                true,
            ));
        }
        let mut arg_types = Vec::with_capacity(measures.len());
        for m in measures {
            let t = m
                .arg
                .as_ref()
                .map(|e| e.output_type(input_schema))
                .transpose()
                .map_err(plan_err)?;
            fields.push(Field::new(
                m.name.clone(),
                m.func.result_type(t).map_err(err)?,
                true,
            ));
            arg_types.push(t);
        }

        for b in batches {
            self.stats.work.add(Work::vector(self.cost.agg_work(
                b.num_rows() as u64,
                group_by.len(),
                measures.len(),
            )));
            let keys = group_by
                .iter()
                .map(|(e, _)| eval_expr(e, b))
                .collect::<OcsResult<Vec<_>>>()?;
            let args = measures
                .iter()
                .map(|m| m.arg.as_ref().map(|e| eval_expr(e, b)).transpose())
                .collect::<OcsResult<Vec<_>>>()?;
            let mut key_buf = Vec::with_capacity(32);
            for row in 0..b.num_rows() {
                key_buf.clear();
                for k in &keys {
                    key_bytes(&mut key_buf, &k.scalar_at(row));
                }
                if !groups.contains_key(key_buf.as_slice()) {
                    let scalars = keys.iter().map(|k| k.scalar_at(row)).collect();
                    let states = measures
                        .iter()
                        .zip(&arg_types)
                        .map(|(m, t)| AggState::new(m.func, *t).map_err(err))
                        .collect::<OcsResult<Vec<_>>>()?;
                    order.push(key_buf.clone());
                    groups.insert(key_buf.clone(), (scalars, states));
                }
                let entry = groups.get_mut(key_buf.as_slice()).expect("inserted");
                for (state, arg) in entry.1.iter_mut().zip(&args) {
                    state.update(arg.as_ref(), row);
                }
            }
        }

        // A GLOBAL aggregate (no keys) over zero rows still emits one row
        // of initial states (COUNT = 0, SUM = NULL) so the engine's final
        // aggregation combines object totals correctly.
        if group_by.is_empty() && groups.is_empty() {
            let states = measures
                .iter()
                .zip(&arg_types)
                .map(|(m, t)| AggState::new(m.func, *t).map_err(err))
                .collect::<OcsResult<Vec<_>>>()?;
            order.push(Vec::new());
            groups.insert(Vec::new(), (Vec::new(), states));
        }
        if groups.is_empty() {
            // Keyed aggregate over an empty object: nothing to contribute.
            return Ok(vec![]);
        }
        let schema = Arc::new(Schema::new(fields));
        let mut builders: Vec<ArrayBuilder> = schema
            .fields()
            .iter()
            .map(|f| ArrayBuilder::new(f.data_type))
            .collect();
        for key in &order {
            let (scalars, states) = &groups[key];
            for (i, s) in scalars.iter().enumerate() {
                builders[i].push(s.clone()).map_err(err)?;
            }
            for (j, st) in states.iter().enumerate() {
                builders[group_by.len() + j].push(st.finish()).map_err(err)?;
            }
        }
        let columns = builders.into_iter().map(|b| Arc::new(b.finish())).collect();
        Ok(vec![
            RecordBatch::try_new(schema, columns).map_err(err)?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::agg::AggFunc;
    use columnar::kernels::arith::ArithOp;
    use columnar::kernels::cmp::CmpOp;
    use substrait_ir::SortField;

    fn test_reader() -> ParqReader {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
            Field::new("g", DataType::Int64, false),
        ]));
        let ids: Vec<i64> = (0..1000).collect();
        let vs: Vec<f64> = ids.iter().map(|&i| (i % 100) as f64).collect();
        let gs: Vec<i64> = ids.iter().map(|&i| i % 4).collect();
        let batch = RecordBatch::try_new(
            schema.clone(),
            vec![
                Arc::new(Array::from_i64(ids)),
                Arc::new(Array::from_f64(vs)),
                Arc::new(Array::from_i64(gs)),
            ],
        )
        .unwrap();
        let bytes = parq::writer::write_file(
            schema,
            &[batch],
            parq::WriteOptions {
                row_group_rows: 100,
                ..Default::default()
            },
        )
        .unwrap();
        ParqReader::open(bytes.into()).unwrap()
    }

    fn base_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
            Field::new("g", DataType::Int64, false),
        ])
    }

    fn run(plan: Plan) -> (Vec<RecordBatch>, ExecStats) {
        let reader = test_reader();
        let cost = CostParams::default();
        Executor::new(&reader, &cost).run(&plan).unwrap()
    }

    #[test]
    fn plain_read_with_projection() {
        let plan = Plan::new(Rel::read("t", base_schema(), Some(vec![2, 0])));
        let (batches, stats) = run(plan);
        let total: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 1000);
        assert_eq!(batches[0].schema().names(), vec!["g", "id"]);
        assert_eq!(stats.rows_scanned, 1000);
        assert!(stats.disk_bytes > 0);
        assert!(stats.work.total_units() > 0.0);
    }

    #[test]
    fn filter_prunes_row_groups() {
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", base_schema(), None)),
            predicate: Expr::cmp(
                CmpOp::GtEq,
                Expr::field(0),
                Expr::lit(Scalar::Int64(950)),
            ),
        });
        let (batches, stats) = run(plan);
        let total: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 50);
        // Only the last of 10 row groups was scanned.
        assert_eq!(stats.rows_scanned, 100);
    }

    #[test]
    fn filter_pruning_respects_read_projection() {
        // Filter on `id` while reading only (v, id): the pruning predicate
        // must map output column 1 back to file column 0.
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", base_schema(), Some(vec![1, 0]))),
            predicate: Expr::cmp(CmpOp::Lt, Expr::field(1), Expr::lit(Scalar::Int64(100))),
        });
        let (batches, stats) = run(plan);
        let total: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 100);
        assert_eq!(stats.rows_scanned, 100, "9 of 10 groups pruned");
    }

    #[test]
    fn aggregate_groups() {
        let plan = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::read("t", base_schema(), None)),
            group_by: vec![(Expr::field(2), "g".into())],
            measures: vec![
                Measure {
                    func: AggFunc::Count,
                    arg: None,
                    name: "n".into(),
                },
                Measure {
                    func: AggFunc::Sum,
                    arg: Some(Expr::field(1)),
                    name: "s".into(),
                },
            ],
        });
        let (batches, _) = run(plan);
        assert_eq!(batches.len(), 1);
        let b = &batches[0];
        assert_eq!(b.num_rows(), 4);
        // Each group has 250 rows.
        for r in 0..4 {
            assert_eq!(b.column(1).scalar_at(r), Scalar::Int64(250));
        }
    }

    #[test]
    fn aggregate_over_expression() {
        // MAX((id % 10)) == 9.
        let plan = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::read("t", base_schema(), None)),
            group_by: vec![],
            measures: vec![Measure {
                func: AggFunc::Max,
                arg: Some(Expr::arith(
                    ArithOp::Mod,
                    Expr::field(0),
                    Expr::lit(Scalar::Int64(10)),
                )),
                name: "m".into(),
            }],
        });
        let (batches, _) = run(plan);
        assert_eq!(batches[0].row(0), vec![Scalar::Int64(9)]);
    }

    #[test]
    fn topn_fetch_over_sort() {
        let plan = Plan::new(Rel::Fetch {
            offset: 0,
            limit: 5,
            input: Box::new(Rel::Sort {
                input: Box::new(Rel::read("t", base_schema(), None)),
                keys: vec![SortField {
                    expr: Expr::field(0),
                    ascending: false,
                    nulls_first: false,
                }],
            }),
        });
        let (batches, stats) = run(plan);
        assert_eq!(batches[0].num_rows(), 5);
        assert_eq!(batches[0].column(0).as_i64().unwrap().values, vec![999, 998, 997, 996, 995]);
        assert_eq!(stats.rows_emitted, 5);
    }

    #[test]
    fn fetch_with_offset() {
        let plan = Plan::new(Rel::Fetch {
            offset: 2,
            limit: 3,
            input: Box::new(Rel::Sort {
                input: Box::new(Rel::read("t", base_schema(), None)),
                keys: vec![SortField {
                    expr: Expr::field(0),
                    ascending: true,
                    nulls_first: true,
                }],
            }),
        });
        let (batches, _) = run(plan);
        assert_eq!(batches[0].column(0).as_i64().unwrap().values, vec![2, 3, 4]);
    }

    #[test]
    fn project_computes_expressions() {
        let plan = Plan::new(Rel::Project {
            input: Box::new(Rel::read("t", base_schema(), None)),
            exprs: vec![(
                Expr::arith(
                    ArithOp::Div,
                    Expr::arith(ArithOp::Mod, Expr::field(0), Expr::lit(Scalar::Int64(100))),
                    Expr::lit(Scalar::Int64(10)),
                ),
                "bucket".into(),
            )],
        });
        let (batches, _) = run(plan);
        let total: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 1000);
        assert_eq!(batches[0].schema().names(), vec!["bucket"]);
        assert_eq!(batches[0].column(0).scalar_at(55), Scalar::Int64(5));
    }

    #[test]
    fn full_chain_filter_agg_topn() {
        // The Laghos shape in miniature.
        let plan = Plan::new(Rel::Fetch {
            offset: 0,
            limit: 3,
            input: Box::new(Rel::Sort {
                keys: vec![SortField {
                    expr: Expr::field(1),
                    ascending: false,
                    nulls_first: false,
                }],
                input: Box::new(Rel::Aggregate {
                    group_by: vec![(Expr::field(0), "g".into())],
                    measures: vec![Measure {
                        func: AggFunc::Avg,
                        arg: Some(Expr::field(1)),
                        name: "avg_v".into(),
                    }],
                    input: Box::new(Rel::Filter {
                        predicate: Expr::Between {
                            expr: Box::new(Expr::field(1)),
                            lo: Box::new(Expr::lit(Scalar::Float64(10.0))),
                            hi: Box::new(Expr::lit(Scalar::Float64(90.0))),
                        },
                        input: Box::new(Rel::read("t", base_schema(), Some(vec![2, 1]))),
                    }),
                }),
            }),
        });
        let (batches, stats) = run(plan);
        assert_eq!(batches[0].num_rows(), 3);
        assert!(stats.rows_emitted == 3);
        assert!(stats.work.total_units() > 0.0);
    }

    #[test]
    fn invalid_plans_rejected() {
        // Sort key not a field ref.
        let plan = Plan::new(Rel::Sort {
            input: Box::new(Rel::read("t", base_schema(), None)),
            keys: vec![SortField {
                expr: Expr::arith(ArithOp::Add, Expr::field(0), Expr::lit(Scalar::Int64(1))),
                ascending: true,
                nulls_first: true,
            }],
        });
        let reader = test_reader();
        let cost = CostParams::default();
        assert!(Executor::new(&reader, &cost).run(&plan).is_err());
        // Ill-typed filter.
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", base_schema(), None)),
            predicate: Expr::field(0),
        });
        assert!(Executor::new(&reader, &cost).run(&plan).is_err());
    }
}
