//! The embedded SQL executor: interprets Substrait plans over parq objects
//! with vectorized columnar kernels.
//!
//! This is OCS's own engine, independent of the `dsq` query engine (as in
//! the paper, where OCS embeds its own SQL engine and Presto merely ships
//! plans to it). It shares the low-level kernels of the `columnar` crate
//! and the work-unit cost vocabulary of `netsim::CostParams`.

use std::sync::Arc;

use columnar::groupby::GroupedAggregator;
use columnar::kernels::selection::Selection;
use columnar::kernels::{arith, boolean, cast, cmp, selection};
use columnar::prelude::*;
use columnar::sort::{self, SortKey};
use netsim::{CostParams, Work};
use parq::{ParqReader, RangePredicate};
use rayon::prelude::*;
use substrait_ir::planck::{self, Diagnostic};
use substrait_ir::{Expr, Measure, Plan, Rel};

use crate::cache::{ChunkKey, NodeCaches, ObjectId};
use crate::{OcsError, OcsResult};

/// Resource consumption of one in-storage execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutorStats {
    /// Serial operator work (everything downstream of the scan), by
    /// efficiency channel.
    pub work: Work,
    /// Per-row-group decode+filter work of the scan stage. Each entry is
    /// independent of the others, so a node bills this stage as the LPT
    /// makespan over its cores rather than the serial sum.
    pub scan_work: Vec<Work>,
    /// Compressed bytes read from disk.
    pub disk_bytes: u64,
    /// Uncompressed bytes decoded.
    pub uncompressed_bytes: u64,
    /// Rows scanned (after row-group pruning).
    pub rows_scanned: u64,
    /// Rows emitted.
    pub rows_emitted: u64,
    /// Row groups that survived statistics pruning but were skipped after
    /// the filter mask came back all-false on the filter columns alone.
    pub row_groups_skipped: u64,
    /// Encoded payload bytes the late-materialized scan never decoded
    /// (footer `uncompressed_len` of the chunks it skipped).
    pub decoded_bytes_avoided: u64,
    /// Column chunks served from the decoded row-group cache.
    pub rg_cache_hits: u64,
    /// Column chunks that had to be read + decoded (cache miss or cache
    /// disabled).
    pub rg_cache_misses: u64,
    /// Disk + decode bytes the caches kept off the cost ledger.
    pub cache_bytes_avoided: u64,
    /// Whole pushed subplans answered from the result cache (set by the
    /// storage node, not the executor — 0 or 1 per request).
    pub result_cache_hits: u64,
}

impl ExecutorStats {
    /// Total work across the serial tail and every scan lane (raw units,
    /// for monitoring — timing must compose `scan_work` via `makespan`).
    pub fn total_work(&self) -> Work {
        self.scan_work.iter().fold(self.work, |acc, w| acc + *w)
    }
}

/// Evaluate a Substrait expression against a batch.
pub fn eval_expr(e: &Expr, batch: &RecordBatch) -> OcsResult<Array> {
    let err = |m: String| OcsError::Exec(m);
    Ok(match e {
        Expr::FieldRef(i) => {
            if *i >= batch.num_columns() {
                return Err(err(format!("field #{i} out of range")));
            }
            batch.column(*i).as_ref().clone()
        }
        Expr::Literal(s) => {
            let dt = s.data_type().unwrap_or(DataType::Boolean);
            Array::from_scalar(s, dt, batch.num_rows()).map_err(|e| err(e.to_string()))?
        }
        Expr::Cmp { op, left, right } => {
            if let Expr::Literal(s) = right.as_ref() {
                let l = eval_expr(left, batch)?;
                return Ok(Array::Boolean(
                    cmp::compare_scalar(&l, s, *op).map_err(|e| err(e.to_string()))?,
                ));
            }
            let (l, r) = (eval_expr(left, batch)?, eval_expr(right, batch)?);
            Array::Boolean(cmp::compare(&l, &r, *op).map_err(|e| err(e.to_string()))?)
        }
        Expr::Arith { op, left, right } => {
            if let Expr::Literal(s) = right.as_ref() {
                let l = eval_expr(left, batch)?;
                return arith::arith_scalar(&l, s, *op).map_err(|e| err(e.to_string()));
            }
            let (l, r) = (eval_expr(left, batch)?, eval_expr(right, batch)?);
            arith::arith(&l, &r, *op).map_err(|e| err(e.to_string()))?
        }
        Expr::And(a, b) => {
            let (x, y) = (eval_expr(a, batch)?, eval_expr(b, batch)?);
            Array::Boolean(
                boolean::and(
                    x.as_bool().map_err(|e| err(e.to_string()))?,
                    y.as_bool().map_err(|e| err(e.to_string()))?,
                )
                .map_err(|e| err(e.to_string()))?,
            )
        }
        Expr::Or(a, b) => {
            let (x, y) = (eval_expr(a, batch)?, eval_expr(b, batch)?);
            Array::Boolean(
                boolean::or(
                    x.as_bool().map_err(|e| err(e.to_string()))?,
                    y.as_bool().map_err(|e| err(e.to_string()))?,
                )
                .map_err(|e| err(e.to_string()))?,
            )
        }
        Expr::Not(x) => {
            let v = eval_expr(x, batch)?;
            Array::Boolean(boolean::not(v.as_bool().map_err(|e| err(e.to_string()))?))
        }
        Expr::Between { expr, lo, hi } => {
            if let (Expr::Literal(l), Expr::Literal(h)) = (lo.as_ref(), hi.as_ref()) {
                let x = eval_expr(expr, batch)?;
                return Ok(Array::Boolean(
                    cmp::between_scalar(&x, l, h).map_err(|e| err(e.to_string()))?,
                ));
            }
            let x = eval_expr(expr, batch)?;
            let l = eval_expr(lo, batch)?;
            let h = eval_expr(hi, batch)?;
            let ge = cmp::compare(&x, &l, cmp::CmpOp::GtEq).map_err(|e| err(e.to_string()))?;
            let le = cmp::compare(&x, &h, cmp::CmpOp::LtEq).map_err(|e| err(e.to_string()))?;
            Array::Boolean(boolean::and(&ge, &le).map_err(|e| err(e.to_string()))?)
        }
        Expr::Cast { expr, to } => {
            let x = eval_expr(expr, batch)?;
            cast::cast(&x, *to).map_err(|e| err(e.to_string()))?
        }
        Expr::Negate(x) => {
            let v = eval_expr(x, batch)?;
            arith::negate(&v).map_err(|e| err(e.to_string()))?
        }
        Expr::IsNull(x) => {
            let v = eval_expr(x, batch)?;
            Array::Boolean(cmp::is_null(&v))
        }
        Expr::IsNotNull(x) => {
            let v = eval_expr(x, batch)?;
            Array::Boolean(cmp::is_not_null(&v))
        }
    })
}

/// Extract row-group-prunable range predicates from a filter expression
/// (top-level conjunction of `field op literal` / `field BETWEEN a AND b`).
fn prunable(e: &Expr, out: &mut Vec<RangePredicate>) {
    match e {
        Expr::And(a, b) => {
            prunable(a, out);
            prunable(b, out);
        }
        Expr::Cmp { op, left, right } => {
            if let (Expr::FieldRef(col), Expr::Literal(v)) = (left.as_ref(), right.as_ref()) {
                out.push(RangePredicate {
                    column: *col,
                    op: *op,
                    value: v.clone(),
                });
            } else if let (Expr::Literal(v), Expr::FieldRef(col)) = (left.as_ref(), right.as_ref())
            {
                out.push(RangePredicate {
                    column: *col,
                    op: op.flip(),
                    value: v.clone(),
                });
            }
        }
        Expr::Between { expr, lo, hi } => {
            if let (Expr::FieldRef(col), Expr::Literal(l), Expr::Literal(h)) =
                (expr.as_ref(), lo.as_ref(), hi.as_ref())
            {
                out.push(RangePredicate {
                    column: *col,
                    op: cmp::CmpOp::GtEq,
                    value: l.clone(),
                });
                out.push(RangePredicate {
                    column: *col,
                    op: cmp::CmpOp::LtEq,
                    value: h.clone(),
                });
            }
        }
        _ => {}
    }
}

/// Outcome of scanning one row group in the late-materialized pipeline.
struct GroupScan {
    /// Filtered batch (None when the selection was all-false).
    batch: Option<RecordBatch>,
    /// Decode + filter work for this group (one makespan lane).
    work: Work,
    /// Compressed bytes actually pulled for this group.
    disk_bytes: u64,
    /// Uncompressed bytes actually decoded for this group.
    uncompressed_bytes: u64,
    /// Rows in the group (scanned regardless of the mask outcome).
    rows: u64,
    /// Encoded bytes of payload chunks never decoded.
    avoided_bytes: u64,
    /// True when the mask killed the whole group.
    skipped: bool,
    /// Chunk-cache accounting for this group.
    cache: ChunkTally,
}

/// How one column chunk was obtained.
enum FetchOutcome {
    /// Served from the decoded row-group cache.
    Hit,
    /// Read + decoded, then admitted to the cache.
    Miss,
    /// No cache configured — the cold path, with zero cache accounting.
    Uncached,
}

/// One column chunk obtained through the (optional) row-group cache, with
/// the cost-ledger deltas it actually incurred: a hit pulls nothing from
/// disk and decodes nothing, so those lanes bill zero and the skipped
/// bytes land in `avoided_bytes` instead.
struct ChunkFetch {
    array: Arc<Array>,
    /// Compressed bytes pulled from disk (0 on a hit).
    disk_bytes: u64,
    /// Bytes decoded (0 on a hit — drives decode work and decompression).
    decoded_bytes: u64,
    /// Disk + decode bytes a hit kept off the ledger (0 on a miss).
    avoided_bytes: u64,
    outcome: FetchOutcome,
}

/// Per-scope accumulator of chunk-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct ChunkTally {
    hits: u64,
    misses: u64,
    avoided_bytes: u64,
}

impl ChunkTally {
    fn absorb(&mut self, f: &ChunkFetch) {
        match f.outcome {
            FetchOutcome::Hit => self.hits += 1,
            FetchOutcome::Miss => self.misses += 1,
            FetchOutcome::Uncached => {}
        }
        self.avoided_bytes += f.avoided_bytes;
    }
}

/// Fetch one column chunk, through the row-group cache when one is bound.
fn fetch_chunk(
    reader: &ParqReader,
    cache: Option<(&NodeCaches, &ObjectId)>,
    rg: usize,
    col: usize,
) -> OcsResult<ChunkFetch> {
    let exec_err = |e: parq::ParqError| OcsError::Exec(e.to_string());
    let Some((caches, object)) = cache else {
        let disk_bytes = reader.chunk_compressed_bytes(rg, col).map_err(exec_err)?;
        let array = Arc::new(reader.read_chunk(rg, col).map_err(exec_err)?);
        let decoded_bytes = array.byte_size() as u64;
        return Ok(ChunkFetch {
            array,
            disk_bytes,
            decoded_bytes,
            avoided_bytes: 0,
            outcome: FetchOutcome::Uncached,
        });
    };
    let key: ChunkKey = (
        object.bucket.clone(),
        object.key.clone(),
        object.version,
        rg,
        col,
    );
    if let Some(array) = caches.row_group.get(&key) {
        let avoided_bytes =
            reader.chunk_compressed_bytes(rg, col).map_err(exec_err)? + array.byte_size() as u64;
        return Ok(ChunkFetch {
            array,
            disk_bytes: 0,
            decoded_bytes: 0,
            avoided_bytes,
            outcome: FetchOutcome::Hit,
        });
    }
    let disk_bytes = reader.chunk_compressed_bytes(rg, col).map_err(exec_err)?;
    let array = Arc::new(reader.read_chunk(rg, col).map_err(exec_err)?);
    let decoded_bytes = array.byte_size() as u64;
    if caches
        .row_group
        .insert(key, array.clone(), decoded_bytes.max(1))
    {
        // Node id is unknown at this layer; the admit is attributed in
        // the per-request events the node records.
        obs::flight().record(obs::FlightKind::CacheAdmit, 0, decoded_bytes.max(1), 0);
    }
    Ok(ChunkFetch {
        array,
        disk_bytes,
        decoded_bytes,
        avoided_bytes: 0,
        outcome: FetchOutcome::Miss,
    })
}

/// The embedded executor over one parq object.
pub struct Executor<'a> {
    reader: &'a ParqReader,
    cost: &'a CostParams,
    stats: ExecutorStats,
    late_mat: bool,
    caches: Option<(&'a NodeCaches, &'a ObjectId)>,
}

impl<'a> Executor<'a> {
    /// New executor over an open object. Late materialization is on by
    /// default (the production configuration); no cache is bound.
    pub fn new(reader: &'a ParqReader, cost: &'a CostParams) -> Self {
        Executor {
            reader,
            cost,
            stats: ExecutorStats::default(),
            late_mat: true,
            caches: None,
        }
    }

    /// Toggle the late-materialized scan (off = decode every projected
    /// column of every surviving row group before filtering, the legacy
    /// path; kept for A/B benchmarking).
    pub fn late_materialization(mut self, enabled: bool) -> Self {
        self.late_mat = enabled;
        self
    }

    /// Bind the node's caches and the scanned object's identity so chunk
    /// reads go through the decoded row-group cache. A disabled tier
    /// leaves the executor on the cold path with zero cache accounting.
    pub fn with_caches(mut self, caches: &'a NodeCaches, object: &'a ObjectId) -> Self {
        if caches.row_group.is_enabled() {
            self.caches = Some((caches, object));
        }
        self
    }

    /// Execute `plan`, returning result batches and resource stats.
    ///
    /// Every plan is hard-verified by `planck` first — the executor
    /// relies on its guarantees (field references in bounds, operand
    /// types agreed, sort keys plain field references) and carries no
    /// per-operator shape checks of its own.
    pub fn run(mut self, plan: &Plan) -> OcsResult<(Vec<RecordBatch>, ExecutorStats)> {
        planck::verify(plan).map_err(|ds| OcsError::Plan(planck::primary(ds)))?;
        let batches = self.run_rel(&plan.root)?;
        self.stats.rows_emitted = batches.iter().map(|b| b.num_rows() as u64).sum();
        Ok((batches, self.stats))
    }

    fn run_rel(&mut self, rel: &Rel) -> OcsResult<Vec<RecordBatch>> {
        match rel {
            Rel::Read { projection, .. } => self.run_read(projection.as_deref(), &[]),
            Rel::Filter { input, predicate } => {
                // Scan-adjacent filters benefit from row-group pruning.
                if let Rel::Read { projection, .. } = input.as_ref() {
                    let mut preds = Vec::new();
                    // Pruning predicates are in terms of the *read output*
                    // (post-projection) — remap to file columns.
                    prunable(predicate, &mut preds);
                    let remapped: Vec<RangePredicate> = match projection {
                        None => preds,
                        Some(p) => preds
                            .into_iter()
                            .filter_map(|rp| {
                                p.get(rp.column).map(|&file_col| RangePredicate {
                                    column: file_col,
                                    ..rp
                                })
                            })
                            .collect(),
                    };
                    // Late materialization: decode filter columns first,
                    // mask, and only materialize payload columns for row
                    // groups with survivors. Predicates without field
                    // references (rare constants) fall back to the eager
                    // path, which needs no column split.
                    let mut filter_pos = Vec::new();
                    predicate.referenced_fields(&mut filter_pos);
                    if self.late_mat && !filter_pos.is_empty() {
                        return self.run_filtered_read(
                            projection.as_deref(),
                            &remapped,
                            predicate,
                            &filter_pos,
                        );
                    }
                    let batches = self.run_read(projection.as_deref(), &remapped)?;
                    return self.apply_filter(batches, predicate);
                }
                let batches = self.run_rel(input)?;
                self.apply_filter(batches, predicate)
            }
            Rel::Project { input, exprs } => {
                // Output field types come from the plan, inferred once —
                // planck verified the typing up front, so the old
                // per-batch re-inference was redundant.
                let input_schema = input
                    .output_schema()
                    .map_err(|e| OcsError::Plan(Diagnostic::from_ir(&e, "exec.project")))?;
                let fields = exprs
                    .iter()
                    .map(|(e, n)| {
                        let dt = e
                            .output_type(&input_schema)
                            .map_err(|e| OcsError::Plan(Diagnostic::from_ir(&e, "exec.project")))?;
                        Ok(Field::new(n.clone(), dt, true))
                    })
                    .collect::<OcsResult<Vec<Field>>>()?;
                let out_schema = Arc::new(Schema::new(fields));
                let batches = self.run_rel(input)?;
                let weight: u32 = exprs.iter().map(|(e, _)| e.op_weight()).sum();
                let mut out = Vec::with_capacity(batches.len());
                for b in &batches {
                    self.stats.work.add(Work::expr(
                        self.cost.eval_work(b.num_rows() as u64, weight.max(1)),
                    ));
                    let columns = exprs
                        .iter()
                        .map(|(e, _)| eval_expr(e, b).map(Arc::new))
                        .collect::<OcsResult<Vec<_>>>()?;
                    out.push(
                        RecordBatch::try_new(out_schema.clone(), columns)
                            .map_err(|e| OcsError::Exec(e.to_string()))?,
                    );
                }
                Ok(out)
            }
            Rel::Aggregate {
                input,
                group_by,
                measures,
            } => {
                let input_schema = input
                    .output_schema()
                    .map_err(|e| OcsError::Plan(Diagnostic::from_ir(&e, "exec.aggregate")))?;
                let batches = self.run_rel(input)?;
                self.aggregate(&input_schema, &batches, group_by, measures)
            }
            Rel::Sort { input, keys } => {
                let batches = self.run_rel(input)?;
                if batches.is_empty() {
                    return Ok(batches);
                }
                let (all, cols) = self.sortable(&batches, keys)?;
                self.stats.work.add(Work::vector(
                    self.cost.sort_work(all.num_rows() as u64, keys.len()),
                ));
                let sorted =
                    sort::sort_batch(&all, &cols).map_err(|e| OcsError::Exec(e.to_string()))?;
                Ok(vec![sorted])
            }
            Rel::Fetch {
                input,
                offset,
                limit,
            } => {
                // Fetch directly over Sort is the top-N operator.
                if let Rel::Sort { input: si, keys } = input.as_ref() {
                    let batches = self.run_rel(si)?;
                    if batches.is_empty() {
                        return Ok(batches);
                    }
                    let (all, cols) = self.sortable(&batches, keys)?;
                    let n = (*offset + *limit) as usize;
                    self.stats.work.add(Work::vector(self.cost.topn_work(
                        all.num_rows() as u64,
                        keys.len(),
                        *offset + *limit,
                    )));
                    let top =
                        sort::top_n(&all, &cols, n).map_err(|e| OcsError::Exec(e.to_string()))?;
                    return self.apply_offset_limit(vec![top], *offset, *limit);
                }
                let batches = self.run_rel(input)?;
                self.apply_offset_limit(batches, *offset, *limit)
            }
        }
    }

    fn run_read(
        &mut self,
        projection: Option<&[usize]>,
        prune: &[RangePredicate],
    ) -> OcsResult<Vec<RecordBatch>> {
        let groups = self.reader.prune_row_groups(prune);
        let indices: Vec<usize> = match projection {
            Some(p) => p.to_vec(),
            None => (0..self.reader.schema().len()).collect(),
        };
        let schema = Arc::new(
            self.reader
                .schema()
                .project(&indices)
                .map_err(|e| OcsError::Exec(e.to_string()))?,
        );
        let mut out = Vec::with_capacity(groups.len());
        for rg in groups {
            // Chunk-at-a-time through the (optional) row-group cache: a
            // hit bills no disk bytes and no decode work, so the node's
            // disk/decompress/scan lanes shrink accordingly.
            let mut columns = Vec::with_capacity(indices.len());
            let mut decoded = 0u64;
            let mut tally = ChunkTally::default();
            for &c in &indices {
                let f = fetch_chunk(self.reader, self.caches, rg, c)?;
                self.stats.disk_bytes += f.disk_bytes;
                decoded += f.decoded_bytes;
                tally.absorb(&f);
                columns.push(f.array);
            }
            let batch = RecordBatch::try_new(schema.clone(), columns)
                .map_err(|e| OcsError::Exec(e.to_string()))?;
            self.stats.uncompressed_bytes += decoded;
            self.stats.rows_scanned += batch.num_rows() as u64;
            self.stats.rg_cache_hits += tally.hits;
            self.stats.rg_cache_misses += tally.misses;
            self.stats.cache_bytes_avoided += tally.avoided_bytes;
            self.stats
                .work
                .add(Work::decode(decoded as f64 * self.cost.byte_decode));
            out.push(batch);
        }
        Ok(out)
    }

    /// The late-materialized scan: per row group, decode only the columns
    /// `predicate` references, evaluate it into a [`Selection`], and skip
    /// the group outright when no row survives; otherwise decode the
    /// remaining projected columns, reuse the already-decoded filter
    /// arrays, and apply the selection (zero-copy when it is all-true).
    ///
    /// Row groups are independent, so decode+filter runs in parallel
    /// across them; batches come back in file order and each group's work
    /// lands in its own `scan_work` lane for makespan billing.
    fn run_filtered_read(
        &mut self,
        projection: Option<&[usize]>,
        prune: &[RangePredicate],
        predicate: &Expr,
        filter_pos: &[usize],
    ) -> OcsResult<Vec<RecordBatch>> {
        let groups = self.reader.prune_row_groups(prune);
        let out_cols: Vec<usize> = match projection {
            Some(p) => p.to_vec(),
            None => (0..self.reader.schema().len()).collect(),
        };
        // planck verified field-reference bounds before execution, so
        // every position in `filter_pos` indexes into `out_cols`.
        // Rewrite the predicate from scan-output positions to positions in
        // the narrow filter-column batch.
        let local_pred = predicate.remap_fields(&|i| {
            filter_pos
                .iter()
                .position(|&p| p == i)
                .expect("every referenced field is in filter_pos")
        });
        let weight = predicate.op_weight();
        let reader = self.reader;
        let cost = self.cost;
        let caches = self.caches;
        let schema = reader.schema();
        let exec_err = |e: parq::ParqError| OcsError::Exec(e.to_string());

        let scanned: Vec<OcsResult<GroupScan>> = groups
            .into_par_iter()
            .map(|rg| -> OcsResult<GroupScan> {
                let rows = reader.row_group_rows(rg).map_err(exec_err)?;
                let mut work = Work::zero();
                let mut disk_bytes = 0u64;
                let mut tally = ChunkTally::default();
                let mut cols: Vec<Option<Arc<Array>>> = vec![None; out_cols.len()];

                // Phase 1: filter columns only. `filter_bytes` counts only
                // bytes actually decoded — cache hits bill nothing here.
                let mut filter_bytes = 0usize;
                for &pos in filter_pos {
                    let file_col = out_cols[pos];
                    let f = fetch_chunk(reader, caches, rg, file_col)?;
                    disk_bytes += f.disk_bytes;
                    filter_bytes += f.decoded_bytes as usize;
                    tally.absorb(&f);
                    cols[pos] = Some(f.array);
                }
                work.add(Work::decode(filter_bytes as f64 * cost.byte_decode));
                let filter_fields: Vec<Field> = filter_pos
                    .iter()
                    .map(|&pos| schema.field(out_cols[pos]).clone())
                    .collect();
                let filter_batch = RecordBatch::try_new(
                    Arc::new(Schema::new(filter_fields)),
                    filter_pos
                        .iter()
                        .map(|&pos| cols[pos].clone().expect("decoded in phase 1"))
                        .collect(),
                )
                .map_err(|e| OcsError::Exec(e.to_string()))?;
                work.add(Work::vector(cost.eval_work(rows, weight)));
                let mask = eval_expr(&local_pred, &filter_batch)?;
                let mask = mask.as_bool().map_err(|e| OcsError::Exec(e.to_string()))?;
                let sel = Selection::from_mask(mask);

                if sel.is_none() {
                    // Nothing survives: never touch the payload chunks.
                    let mut avoided = 0u64;
                    for (pos, slot) in cols.iter().enumerate() {
                        if slot.is_none() {
                            avoided += reader
                                .chunk_uncompressed_bytes(rg, out_cols[pos])
                                .map_err(exec_err)?;
                        }
                    }
                    return Ok(GroupScan {
                        batch: None,
                        work,
                        disk_bytes,
                        uncompressed_bytes: filter_bytes as u64,
                        rows,
                        avoided_bytes: avoided,
                        skipped: true,
                        cache: tally,
                    });
                }

                // Phase 2: payload columns for the surviving group. As in
                // phase 1, `payload_bytes` counts decoded (missed) bytes
                // only so decompression and decode work bill honestly.
                let mut payload_bytes = 0usize;
                for (pos, slot) in cols.iter_mut().enumerate() {
                    if slot.is_none() {
                        let file_col = out_cols[pos];
                        let f = fetch_chunk(reader, caches, rg, file_col)?;
                        disk_bytes += f.disk_bytes;
                        payload_bytes += f.decoded_bytes as usize;
                        tally.absorb(&f);
                        *slot = Some(f.array);
                    }
                }
                work.add(Work::decode(payload_bytes as f64 * cost.byte_decode));
                let fields: Vec<Field> =
                    out_cols.iter().map(|&c| schema.field(c).clone()).collect();
                let full = RecordBatch::try_new(
                    Arc::new(Schema::new(fields)),
                    cols.into_iter()
                        .map(|c| c.expect("all columns decoded"))
                        .collect(),
                )
                .map_err(|e| OcsError::Exec(e.to_string()))?;
                let batch = sel
                    .apply_batch(&full)
                    .map_err(|e| OcsError::Exec(e.to_string()))?;
                Ok(GroupScan {
                    batch: Some(batch),
                    work,
                    disk_bytes,
                    uncompressed_bytes: (filter_bytes + payload_bytes) as u64,
                    rows,
                    avoided_bytes: 0,
                    skipped: false,
                    cache: tally,
                })
            })
            .collect();

        let mut out = Vec::with_capacity(scanned.len());
        for g in scanned {
            let g = g?;
            self.stats.disk_bytes += g.disk_bytes;
            self.stats.uncompressed_bytes += g.uncompressed_bytes;
            self.stats.rows_scanned += g.rows;
            self.stats.decoded_bytes_avoided += g.avoided_bytes;
            self.stats.row_groups_skipped += g.skipped as u64;
            self.stats.rg_cache_hits += g.cache.hits;
            self.stats.rg_cache_misses += g.cache.misses;
            self.stats.cache_bytes_avoided += g.cache.avoided_bytes;
            self.stats.scan_work.push(g.work);
            if let Some(b) = g.batch {
                if b.num_rows() > 0 {
                    out.push(b);
                }
            }
        }
        Ok(out)
    }

    fn apply_filter(
        &mut self,
        batches: Vec<RecordBatch>,
        predicate: &Expr,
    ) -> OcsResult<Vec<RecordBatch>> {
        let weight = predicate.op_weight();
        let mut out = Vec::with_capacity(batches.len());
        for b in &batches {
            self.stats.work.add(Work::vector(
                self.cost.eval_work(b.num_rows() as u64, weight),
            ));
            let mask = eval_expr(predicate, b)?;
            let mask = mask.as_bool().map_err(|e| OcsError::Exec(e.to_string()))?;
            let f = selection::filter_batch(b, mask).map_err(|e| OcsError::Exec(e.to_string()))?;
            if f.num_rows() > 0 {
                out.push(f);
            }
        }
        Ok(out)
    }

    fn sortable(
        &self,
        batches: &[RecordBatch],
        keys: &[substrait_ir::SortField],
    ) -> OcsResult<(RecordBatch, Vec<SortKey>)> {
        let all = RecordBatch::concat(batches).map_err(|e| OcsError::Exec(e.to_string()))?;
        let cols = keys
            .iter()
            .map(|k| match &k.expr {
                Expr::FieldRef(i) => Ok(SortKey {
                    column: *i,
                    ascending: k.ascending,
                    nulls_first: k.nulls_first,
                }),
                other => Err(OcsError::Plan(Diagnostic::new(
                    planck::DiagCode::SortKeyNotFieldRef,
                    "exec.sort",
                    format!("sort keys must be field references, got {other}"),
                ))),
            })
            .collect::<OcsResult<Vec<_>>>()?;
        Ok((all, cols))
    }

    fn apply_offset_limit(
        &mut self,
        batches: Vec<RecordBatch>,
        offset: u64,
        limit: u64,
    ) -> OcsResult<Vec<RecordBatch>> {
        if batches.is_empty() {
            return Ok(batches);
        }
        let all = RecordBatch::concat(&batches).map_err(|e| OcsError::Exec(e.to_string()))?;
        let start = (offset as usize).min(all.num_rows());
        let end = (start + limit as usize).min(all.num_rows());
        let idx: Vec<usize> = (start..end).collect();
        let out = selection::take_batch(&all, &idx).map_err(|e| OcsError::Exec(e.to_string()))?;
        Ok(vec![out])
    }

    fn aggregate(
        &mut self,
        input_schema: &Schema,
        batches: &[RecordBatch],
        group_by: &[(Expr, String)],
        measures: &[Measure],
    ) -> OcsResult<Vec<RecordBatch>> {
        let err = |e: columnar::ColumnarError| OcsError::Exec(e.to_string());
        let plan_err =
            |e: substrait_ir::IrError| OcsError::Plan(Diagnostic::from_ir(&e, "exec.aggregate"));

        // Output schema and per-measure argument types, from the *plan*
        // (usable even when the filtered input is empty).
        let mut fields = Vec::with_capacity(group_by.len() + measures.len());
        let mut key_types = Vec::with_capacity(group_by.len());
        for (e, n) in group_by {
            let dt = e.output_type(input_schema).map_err(plan_err)?;
            fields.push(Field::new(n.clone(), dt, true));
            key_types.push(dt);
        }
        let mut specs = Vec::with_capacity(measures.len());
        for m in measures {
            let t = m
                .arg
                .as_ref()
                .map(|e| e.output_type(input_schema))
                .transpose()
                .map_err(plan_err)?;
            fields.push(Field::new(
                m.name.clone(),
                m.func.result_type(t).map_err(err)?,
                true,
            ));
            specs.push((m.func, t));
        }

        // The same vectorized kernel the compute-layer engine runs: dense
        // group ids via the shared group-id kernel, then columnar
        // accumulators — a pushed-down aggregate computes exactly what the
        // engine would.
        let mut agg = GroupedAggregator::new(key_types, &specs).map_err(err)?;
        for b in batches {
            self.stats.work.add(Work::vector(self.cost.agg_work(
                b.num_rows() as u64,
                group_by.len(),
                measures.len(),
            )));
            let keys = group_by
                .iter()
                .map(|(e, _)| eval_expr(e, b))
                .collect::<OcsResult<Vec<_>>>()?;
            let args = measures
                .iter()
                .map(|m| m.arg.as_ref().map(|e| eval_expr(e, b)).transpose())
                .collect::<OcsResult<Vec<_>>>()?;
            let key_refs: Vec<&Array> = keys.iter().collect();
            let arg_refs: Vec<Option<&Array>> = args.iter().map(|a| a.as_ref()).collect();
            agg.update(&key_refs, &arg_refs, b.num_rows())
                .map_err(err)?;
        }

        // A GLOBAL aggregate (no keys) over zero rows still emits one row
        // of initial states (COUNT = 0, SUM = NULL) so the engine's final
        // aggregation combines object totals correctly.
        if group_by.is_empty() {
            agg.ensure_global_group();
        }
        if agg.num_groups() == 0 {
            // Keyed aggregate over an empty object: nothing to contribute.
            return Ok(vec![]);
        }
        let schema = Arc::new(Schema::new(fields));
        let (keys, measures_out) = agg.finish();
        let columns = keys
            .into_iter()
            .chain(measures_out)
            .map(Arc::new)
            .collect::<Vec<_>>();
        Ok(vec![RecordBatch::try_new(schema, columns).map_err(err)?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::agg::AggFunc;
    use columnar::kernels::arith::ArithOp;
    use columnar::kernels::cmp::CmpOp;
    use substrait_ir::SortField;

    fn test_reader() -> ParqReader {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
            Field::new("g", DataType::Int64, false),
        ]));
        let ids: Vec<i64> = (0..1000).collect();
        let vs: Vec<f64> = ids.iter().map(|&i| (i % 100) as f64).collect();
        let gs: Vec<i64> = ids.iter().map(|&i| i % 4).collect();
        let batch = RecordBatch::try_new(
            schema.clone(),
            vec![
                Arc::new(Array::from_i64(ids)),
                Arc::new(Array::from_f64(vs)),
                Arc::new(Array::from_i64(gs)),
            ],
        )
        .unwrap();
        let bytes = parq::writer::write_file(
            schema,
            &[batch],
            parq::WriteOptions {
                row_group_rows: 100,
                ..Default::default()
            },
        )
        .unwrap();
        ParqReader::open(bytes.into()).unwrap()
    }

    fn base_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
            Field::new("g", DataType::Int64, false),
        ])
    }

    fn run(plan: Plan) -> (Vec<RecordBatch>, ExecutorStats) {
        let reader = test_reader();
        let cost = CostParams::default();
        Executor::new(&reader, &cost).run(&plan).unwrap()
    }

    fn run_with(plan: &Plan, late_mat: bool) -> (Vec<RecordBatch>, ExecutorStats) {
        let reader = test_reader();
        let cost = CostParams::default();
        Executor::new(&reader, &cost)
            .late_materialization(late_mat)
            .run(plan)
            .unwrap()
    }

    /// A filter statistics pruning cannot touch (arith wraps the column)
    /// whose matches all land in row group 0: `id % 1000 < limit`.
    fn clustered_filter_plan(limit: i64, projection: Option<Vec<usize>>) -> Plan {
        Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", base_schema(), projection)),
            predicate: Expr::cmp(
                CmpOp::Lt,
                Expr::arith(ArithOp::Mod, Expr::field(0), Expr::lit(Scalar::Int64(1000))),
                Expr::lit(Scalar::Int64(limit)),
            ),
        })
    }

    #[test]
    fn plain_read_with_projection() {
        let plan = Plan::new(Rel::read("t", base_schema(), Some(vec![2, 0])));
        let (batches, stats) = run(plan);
        let total: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 1000);
        assert_eq!(batches[0].schema().names(), vec!["g", "id"]);
        assert_eq!(stats.rows_scanned, 1000);
        assert!(stats.disk_bytes > 0);
        assert!(stats.work.total_units() > 0.0);
    }

    #[test]
    fn filter_prunes_row_groups() {
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", base_schema(), None)),
            predicate: Expr::cmp(CmpOp::GtEq, Expr::field(0), Expr::lit(Scalar::Int64(950))),
        });
        let (batches, stats) = run(plan);
        let total: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 50);
        // Only the last of 10 row groups was scanned.
        assert_eq!(stats.rows_scanned, 100);
    }

    #[test]
    fn filter_pruning_respects_read_projection() {
        // Filter on `id` while reading only (v, id): the pruning predicate
        // must map output column 1 back to file column 0.
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", base_schema(), Some(vec![1, 0]))),
            predicate: Expr::cmp(CmpOp::Lt, Expr::field(1), Expr::lit(Scalar::Int64(100))),
        });
        let (batches, stats) = run(plan);
        let total: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 100);
        assert_eq!(stats.rows_scanned, 100, "9 of 10 groups pruned");
    }

    #[test]
    fn aggregate_groups() {
        let plan = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::read("t", base_schema(), None)),
            group_by: vec![(Expr::field(2), "g".into())],
            measures: vec![
                Measure {
                    func: AggFunc::Count,
                    arg: None,
                    name: "n".into(),
                },
                Measure {
                    func: AggFunc::Sum,
                    arg: Some(Expr::field(1)),
                    name: "s".into(),
                },
            ],
        });
        let (batches, _) = run(plan);
        assert_eq!(batches.len(), 1);
        let b = &batches[0];
        assert_eq!(b.num_rows(), 4);
        // Each group has 250 rows.
        for r in 0..4 {
            assert_eq!(b.column(1).scalar_at(r), Scalar::Int64(250));
        }
    }

    #[test]
    fn aggregate_over_expression() {
        // MAX((id % 10)) == 9.
        let plan = Plan::new(Rel::Aggregate {
            input: Box::new(Rel::read("t", base_schema(), None)),
            group_by: vec![],
            measures: vec![Measure {
                func: AggFunc::Max,
                arg: Some(Expr::arith(
                    ArithOp::Mod,
                    Expr::field(0),
                    Expr::lit(Scalar::Int64(10)),
                )),
                name: "m".into(),
            }],
        });
        let (batches, _) = run(plan);
        assert_eq!(batches[0].row(0), vec![Scalar::Int64(9)]);
    }

    #[test]
    fn topn_fetch_over_sort() {
        let plan = Plan::new(Rel::Fetch {
            offset: 0,
            limit: 5,
            input: Box::new(Rel::Sort {
                input: Box::new(Rel::read("t", base_schema(), None)),
                keys: vec![SortField {
                    expr: Expr::field(0),
                    ascending: false,
                    nulls_first: false,
                }],
            }),
        });
        let (batches, stats) = run(plan);
        assert_eq!(batches[0].num_rows(), 5);
        assert_eq!(
            batches[0].column(0).as_i64().unwrap().values,
            vec![999, 998, 997, 996, 995]
        );
        assert_eq!(stats.rows_emitted, 5);
    }

    #[test]
    fn fetch_with_offset() {
        let plan = Plan::new(Rel::Fetch {
            offset: 2,
            limit: 3,
            input: Box::new(Rel::Sort {
                input: Box::new(Rel::read("t", base_schema(), None)),
                keys: vec![SortField {
                    expr: Expr::field(0),
                    ascending: true,
                    nulls_first: true,
                }],
            }),
        });
        let (batches, _) = run(plan);
        assert_eq!(batches[0].column(0).as_i64().unwrap().values, vec![2, 3, 4]);
    }

    #[test]
    fn project_computes_expressions() {
        let plan = Plan::new(Rel::Project {
            input: Box::new(Rel::read("t", base_schema(), None)),
            exprs: vec![(
                Expr::arith(
                    ArithOp::Div,
                    Expr::arith(ArithOp::Mod, Expr::field(0), Expr::lit(Scalar::Int64(100))),
                    Expr::lit(Scalar::Int64(10)),
                ),
                "bucket".into(),
            )],
        });
        let (batches, _) = run(plan);
        let total: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 1000);
        assert_eq!(batches[0].schema().names(), vec!["bucket"]);
        assert_eq!(batches[0].column(0).scalar_at(55), Scalar::Int64(5));
    }

    #[test]
    fn full_chain_filter_agg_topn() {
        // The Laghos shape in miniature.
        let plan = Plan::new(Rel::Fetch {
            offset: 0,
            limit: 3,
            input: Box::new(Rel::Sort {
                keys: vec![SortField {
                    expr: Expr::field(1),
                    ascending: false,
                    nulls_first: false,
                }],
                input: Box::new(Rel::Aggregate {
                    group_by: vec![(Expr::field(0), "g".into())],
                    measures: vec![Measure {
                        func: AggFunc::Avg,
                        arg: Some(Expr::field(1)),
                        name: "avg_v".into(),
                    }],
                    input: Box::new(Rel::Filter {
                        predicate: Expr::Between {
                            expr: Box::new(Expr::field(1)),
                            lo: Box::new(Expr::lit(Scalar::Float64(10.0))),
                            hi: Box::new(Expr::lit(Scalar::Float64(90.0))),
                        },
                        input: Box::new(Rel::read("t", base_schema(), Some(vec![2, 1]))),
                    }),
                }),
            }),
        });
        let (batches, stats) = run(plan);
        assert_eq!(batches[0].num_rows(), 3);
        assert!(stats.rows_emitted == 3);
        assert!(stats.work.total_units() > 0.0);
    }

    #[test]
    fn late_mat_skips_masked_row_groups() {
        // `id % 1000 < 50` survives stats pruning (arith hides the column)
        // but only rows 0..49 — all in the first of 10 groups — match.
        let (batches, stats) = run(clustered_filter_plan(50, None));
        let total: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 50);
        assert_eq!(stats.rows_scanned, 1000, "no group is stats-prunable");
        assert_eq!(stats.row_groups_skipped, 9, "mask kills 9 of 10 groups");
        assert!(
            stats.decoded_bytes_avoided > 0,
            "skipped groups never decode v and g"
        );
        assert_eq!(stats.scan_work.len(), 10, "one work lane per row group");
        assert!(stats.total_work().total_units() > 0.0);
    }

    #[test]
    fn late_mat_matches_eager_path() {
        for plan in [
            clustered_filter_plan(50, None),
            clustered_filter_plan(0, None),
            clustered_filter_plan(1000, Some(vec![2, 0])),
            clustered_filter_plan(50, Some(vec![1, 0])),
        ] {
            let (late, late_stats) = run_with(&plan, true);
            let (eager, eager_stats) = run_with(&plan, false);
            let rows = |bs: &[RecordBatch]| bs.iter().map(|b| b.num_rows()).sum::<usize>();
            assert_eq!(rows(&late), rows(&eager));
            let flat = |bs: &[RecordBatch]| -> Vec<Vec<Scalar>> {
                bs.iter()
                    .flat_map(|b| (0..b.num_rows()).map(|r| b.row(r)).collect::<Vec<_>>())
                    .collect()
            };
            assert_eq!(flat(&late), flat(&eager));
            assert_eq!(late_stats.rows_emitted, eager_stats.rows_emitted);
            assert_eq!(late_stats.rows_scanned, eager_stats.rows_scanned);
            assert!(late_stats.uncompressed_bytes <= eager_stats.uncompressed_bytes);
        }
    }

    #[test]
    fn late_mat_all_true_selection_decodes_everything_once() {
        // `id % 1000 < 1000` matches every row: the scan must bill exactly
        // what the eager path bills — same bytes, nothing avoided.
        let plan = clustered_filter_plan(1000, None);
        let (late, late_stats) = run_with(&plan, true);
        let (_, eager_stats) = run_with(&plan, false);
        assert_eq!(late.iter().map(|b| b.num_rows()).sum::<usize>(), 1000);
        assert_eq!(
            late_stats.uncompressed_bytes,
            eager_stats.uncompressed_bytes
        );
        assert_eq!(late_stats.disk_bytes, eager_stats.disk_bytes);
        assert_eq!(late_stats.row_groups_skipped, 0);
        assert_eq!(late_stats.decoded_bytes_avoided, 0);
    }

    #[test]
    fn late_mat_halves_decoded_bytes_on_low_selectivity_scan() {
        // The Laghos shape: select every column, filter to a tiny clustered
        // slice. The acceptance bar is a >=2x decoded-bytes reduction.
        let plan = clustered_filter_plan(10, None);
        let (_, late) = run_with(&plan, true);
        let (_, eager) = run_with(&plan, false);
        assert!(
            late.uncompressed_bytes * 2 <= eager.uncompressed_bytes,
            "late {} vs eager {}",
            late.uncompressed_bytes,
            eager.uncompressed_bytes
        );
        assert!(late.disk_bytes < eager.disk_bytes);
    }

    #[test]
    fn invalid_plans_rejected() {
        // Sort key not a field ref.
        let plan = Plan::new(Rel::Sort {
            input: Box::new(Rel::read("t", base_schema(), None)),
            keys: vec![SortField {
                expr: Expr::arith(ArithOp::Add, Expr::field(0), Expr::lit(Scalar::Int64(1))),
                ascending: true,
                nulls_first: true,
            }],
        });
        let reader = test_reader();
        let cost = CostParams::default();
        assert!(Executor::new(&reader, &cost).run(&plan).is_err());
        // Ill-typed filter.
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", base_schema(), None)),
            predicate: Expr::field(0),
        });
        assert!(Executor::new(&reader, &cost).run(&plan).is_err());
    }
}
