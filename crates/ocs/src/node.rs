//! A storage node: objects + the embedded executor + its (weak) hardware.

use std::sync::Arc;

use columnar::RecordBatch;
use lzcodec::CodecKind;
use netsim::{makespan, CostParams, NodeSpec};
use objstore::ObjectStore;
use parq::ParqReader;
use substrait_ir::Plan;

use crate::exec::{Executor, ExecutorStats};
use crate::OcsResult;

/// Result of one in-storage plan execution, with resource consumption
/// expressed in the node's own core-seconds.
#[derive(Debug, Clone)]
pub struct NodeResponse {
    /// Result batches (pre-serialization).
    pub batches: Vec<RecordBatch>,
    /// Core-seconds of operator work on this node.
    pub cpu_s: f64,
    /// Core-seconds of decompression on this node.
    pub decompress_s: f64,
    /// Compressed bytes read from this node's disk.
    pub disk_bytes: u64,
    /// Raw executor stats (for monitoring).
    pub exec: ExecutorStats,
}

/// One OCS storage node.
#[derive(Debug)]
pub struct StorageNode {
    id: usize,
    store: Arc<ObjectStore>,
    spec: NodeSpec,
    cost: CostParams,
}

impl StorageNode {
    /// Create a node over the shared object store.
    pub fn new(id: usize, store: Arc<ObjectStore>, spec: NodeSpec, cost: CostParams) -> Self {
        StorageNode {
            id,
            store,
            spec,
            cost,
        }
    }

    /// Node id (used by the frontend's shard routing).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's hardware spec.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Execute `plan` against the object at `bucket`/`key`.
    pub fn execute(&self, plan: &Plan, bucket: &str, key: &str) -> OcsResult<NodeResponse> {
        let bytes = self.store.get_object(bucket, key)?;
        let reader = ParqReader::open(bytes).map_err(|e| crate::OcsError::Exec(e.to_string()))?;
        let codec = reader.codec();
        let (batches, exec) = Executor::new(&reader, &self.cost).run(plan)?;

        // Decompression cost: uncompressed bytes through the codec at its
        // single-core throughput.
        let decompress_s = match codec {
            CodecKind::None => 0.0,
            other => exec.uncompressed_bytes as f64 / (other.spec().decompress_gbps * 1e9),
        };
        // Scan lanes (per-row-group decode+filter) run in parallel across
        // the node's cores; everything downstream is billed serially.
        let lanes: Vec<f64> = exec
            .scan_work
            .iter()
            .map(|w| self.spec.core_seconds_for(*w))
            .collect();
        let cpu_s = makespan(&lanes, self.spec.cores) + self.spec.core_seconds_for(exec.work);
        Ok(NodeResponse {
            batches,
            cpu_s,
            decompress_s,
            disk_bytes: exec.disk_bytes,
            exec,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::prelude::*;
    use substrait_ir::{Expr, Rel};

    fn setup(codec: CodecKind) -> (Arc<ObjectStore>, Schema) {
        let store = Arc::new(ObjectStore::new());
        store.create_bucket("lake").unwrap();
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64, false)]));
        let batch = RecordBatch::try_new(
            schema.clone(),
            vec![Arc::new(Array::from_i64((0..10_000).collect()))],
        )
        .unwrap();
        let bytes = parq::writer::write_file(
            schema.clone(),
            &[batch],
            parq::WriteOptions {
                codec,
                ..Default::default()
            },
        )
        .unwrap();
        store.put_object("lake", "t/0", bytes.into()).unwrap();
        ((store), (*schema).clone())
    }

    #[test]
    fn executes_and_bills_in_core_seconds() {
        let (store, schema) = setup(CodecKind::None);
        let node = StorageNode::new(
            0,
            store,
            NodeSpec {
                name: "storage",
                cores: 16,
                ghz: 2.0,
                eff_decode: 0.06,
                eff_vector: 0.12,
                eff_expr: 0.03,
            },
            CostParams::default(),
        );
        let plan = Plan::new(Rel::read("t", schema, None));
        let resp = node.execute(&plan, "lake", "t/0").unwrap();
        assert_eq!(
            resp.batches.iter().map(|b| b.num_rows()).sum::<usize>(),
            10_000
        );
        assert!(resp.cpu_s > 0.0);
        assert_eq!(resp.decompress_s, 0.0, "no codec, no decompress cost");
        assert!(resp.disk_bytes > 0);
    }

    #[test]
    fn compressed_objects_cost_decompression_but_less_disk() {
        let (store_raw, schema) = setup(CodecKind::None);
        let (store_zst, _) = setup(CodecKind::Zst);
        let spec = NodeSpec {
            name: "storage",
            cores: 16,
            ghz: 2.0,
            eff_decode: 0.06,
            eff_vector: 0.12,
            eff_expr: 0.03,
        };
        let raw = StorageNode::new(0, store_raw, spec.clone(), CostParams::default());
        let zst = StorageNode::new(0, store_zst, spec, CostParams::default());
        let plan = Plan::new(Rel::read("t", schema, None));
        let a = raw.execute(&plan, "lake", "t/0").unwrap();
        let b = zst.execute(&plan, "lake", "t/0").unwrap();
        assert!(
            b.disk_bytes < a.disk_bytes,
            "compression shrinks disk reads"
        );
        assert!(b.decompress_s > 0.0);
        assert_eq!(
            a.batches.iter().map(|x| x.num_rows()).sum::<usize>(),
            b.batches.iter().map(|x| x.num_rows()).sum::<usize>(),
        );
    }

    #[test]
    fn weaker_node_bills_more_seconds_for_same_work() {
        let (store, schema) = setup(CodecKind::None);
        let weak = StorageNode::new(
            0,
            store.clone(),
            NodeSpec {
                name: "weak",
                cores: 16,
                ghz: 2.0,
                eff_decode: 0.06,
                eff_vector: 0.12,
                eff_expr: 0.03,
            },
            CostParams::default(),
        );
        let strong = StorageNode::new(
            1,
            store,
            NodeSpec {
                name: "strong",
                cores: 16,
                ghz: 4.0,
                eff_decode: 0.12,
                eff_vector: 0.24,
                eff_expr: 0.06,
            },
            CostParams::default(),
        );
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", schema, None)),
            predicate: Expr::cmp(
                columnar::kernels::cmp::CmpOp::Gt,
                Expr::field(0),
                Expr::lit(Scalar::Int64(5000)),
            ),
        });
        let a = weak.execute(&plan, "lake", "t/0").unwrap();
        let b = strong.execute(&plan, "lake", "t/0").unwrap();
        assert!(a.cpu_s > b.cpu_s * 3.0, "{} vs {}", a.cpu_s, b.cpu_s);
        assert_eq!(a.exec.rows_emitted, b.exec.rows_emitted);
    }
}
