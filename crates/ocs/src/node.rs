//! A storage node: objects + the embedded executor + its (weak) hardware.

use std::sync::Arc;

use columnar::RecordBatch;
use lzcodec::CodecKind;
use netsim::{makespan, CostParams, DiskSpec, NodeSpec};
use objstore::ObjectStore;
use parq::ParqReader;
use substrait_ir::Plan;

use crate::cache::{CachedResult, NodeCaches, ObjectId, ResultKey};
use crate::exec::{Executor, ExecutorStats};
use crate::OcsResult;

/// Result of one in-storage plan execution, with resource consumption
/// expressed in the node's own core-seconds.
#[derive(Debug, Clone)]
pub struct NodeResponse {
    /// Result batches (pre-serialization).
    pub batches: Vec<RecordBatch>,
    /// Core-seconds of operator work on this node.
    pub cpu_s: f64,
    /// Core-seconds of decompression on this node.
    pub decompress_s: f64,
    /// Compressed bytes read from this node's disk.
    pub disk_bytes: u64,
    /// Raw executor stats (for monitoring).
    pub exec: ExecutorStats,
    /// Storage-executor spans on the node's *local* simulated clock
    /// (t = 0 at request arrival). Shipped across the RPC boundary in
    /// the stream trailer and grafted under the engine's split span.
    pub spans: Vec<obs::SpanRec>,
}

/// One OCS storage node.
#[derive(Debug)]
pub struct StorageNode {
    id: usize,
    store: Arc<ObjectStore>,
    spec: NodeSpec,
    disk: DiskSpec,
    cost: CostParams,
    caches: NodeCaches,
}

impl StorageNode {
    /// Create a node over the shared object store. Caches start disabled;
    /// bind them with [`StorageNode::with_caches`].
    pub fn new(
        id: usize,
        store: Arc<ObjectStore>,
        spec: NodeSpec,
        disk: DiskSpec,
        cost: CostParams,
    ) -> Self {
        StorageNode {
            id,
            store,
            spec,
            disk,
            cost,
            caches: NodeCaches::disabled(),
        }
    }

    /// Attach this node's near-storage caches (row-group + result tiers).
    pub fn with_caches(mut self, caches: NodeCaches) -> Self {
        self.caches = caches;
        self
    }

    /// Node id (used by the frontend's shard routing).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's hardware spec.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// This node's cache tiers (for monitoring and tests).
    pub fn caches(&self) -> &NodeCaches {
        &self.caches
    }

    /// Execute `plan` against the object at `bucket`/`key`.
    ///
    /// The result-cache fingerprint is computed here from the canonical
    /// Substrait encoding; callers that already hold the encoded plan
    /// bytes (the frontend) should use [`StorageNode::execute_encoded`]
    /// to skip the re-encode.
    pub fn execute(&self, plan: &Plan, bucket: &str, key: &str) -> OcsResult<NodeResponse> {
        let fingerprint = if self.caches.result.is_enabled() {
            cache::fnv1a64(&substrait_ir::encode(plan))
        } else {
            0
        };
        self.execute_encoded(plan, bucket, key, fingerprint)
    }

    /// [`StorageNode::execute`] with a precomputed plan fingerprint —
    /// FNV-1a of the canonical Substrait plan bytes (ignored when the
    /// result tier is disabled).
    pub fn execute_encoded(
        &self,
        plan: &Plan,
        bucket: &str,
        key: &str,
        fingerprint: u64,
    ) -> OcsResult<NodeResponse> {
        let wall_start = std::time::Instant::now();
        let (bytes, version) = self.store.get_object_versioned(bucket, key)?;
        self.caches.observe_version(bucket, key, version);

        // Result-cache probe: identical verified subplans against the same
        // object version replay the cold run's batches at zero simulated
        // cost. The plan fingerprint is a stable FNV-1a of the canonical
        // Substrait encoding, so it survives plan re-construction.
        let result_key: ResultKey = (bucket.to_string(), key.to_string(), version, fingerprint);
        if let Some(cached) = self.caches.result.get(&result_key) {
            return Ok(self.replay_cached(&cached, wall_start));
        }

        let object = ObjectId {
            bucket: bucket.to_string(),
            key: key.to_string(),
            version,
        };
        let (rg_before, result_before) = self.caches.stats();
        let reader = ParqReader::open(bytes).map_err(|e| crate::OcsError::Exec(e.to_string()))?;
        let codec = reader.codec();
        let (batches, exec) = Executor::new(&reader, &self.cost)
            .with_caches(&self.caches, &object)
            .run(plan)?;

        if self.caches.result.is_enabled() {
            let charge: u64 = batches.iter().map(|b| b.byte_size() as u64).sum();
            let admitted = self.caches.result.insert(
                result_key,
                Arc::new(CachedResult {
                    batches: batches.clone(),
                    rows_emitted: exec.rows_emitted,
                    // What a future hit avoids: this run's disk + decode
                    // traffic, plus whatever the chunk cache already saved.
                    bytes_avoided: exec.disk_bytes
                        + exec.uncompressed_bytes
                        + exec.cache_bytes_avoided,
                }),
                charge.max(1),
            );
            if admitted {
                obs::flight().record(
                    obs::FlightKind::CacheAdmit,
                    1,
                    charge.max(1),
                    self.id as u64,
                );
            }
        }

        // Flight-record what the caches did during this request: hits
        // served, and evictions the inserts forced (the per-tier counters
        // are monotonic, so a delta means this request evicted).
        if exec.rg_cache_hits > 0 {
            obs::flight().record(
                obs::FlightKind::CacheHit,
                exec.rg_cache_hits,
                exec.cache_bytes_avoided,
                self.id as u64,
            );
        }
        let (rg_after, result_after) = self.caches.stats();
        if rg_after.evictions > rg_before.evictions {
            obs::flight().record(
                obs::FlightKind::CacheEvict,
                0,
                rg_after.evictions,
                self.id as u64,
            );
        }
        if result_after.evictions > result_before.evictions {
            obs::flight().record(
                obs::FlightKind::CacheEvict,
                1,
                result_after.evictions,
                self.id as u64,
            );
        }

        // Decompression cost: uncompressed bytes through the codec at its
        // single-core throughput.
        let decompress_s = match codec {
            CodecKind::None => 0.0,
            other => exec.uncompressed_bytes as f64 / (other.spec().decompress_gbps * 1e9),
        };
        // Scan lanes (per-row-group decode+filter) run in parallel across
        // the node's cores; everything downstream is billed serially.
        let lanes: Vec<f64> = exec
            .scan_work
            .iter()
            .map(|w| self.spec.core_seconds_for(*w))
            .collect();
        let scan_s = makespan(&lanes, self.spec.cores);
        let ops_s = self.spec.core_seconds_for(exec.work);
        let cpu_s = scan_s + ops_s;

        // Record the request's local span timeline: t = 0 at request
        // arrival, phases laid end-to-end. The engine grafts these under
        // its split span after the trailer frame delivers them.
        let disk_s = self.disk.read_seconds(exec.disk_bytes);
        let spans = self.record_spans(disk_s, decompress_s, scan_s, ops_s, &exec, wall_start);

        let m = obs::metrics();
        m.counter("ocs.storage.requests").inc();
        m.counter("ocs.storage.rows_scanned").add(exec.rows_scanned);
        m.counter("ocs.storage.rows_returned")
            .add(exec.rows_emitted);
        m.counter("ocs.storage.disk_bytes").add(exec.disk_bytes);
        m.counter("ocs.cache.rg_hits").add(exec.rg_cache_hits);
        m.counter("ocs.cache.rg_misses").add(exec.rg_cache_misses);
        m.counter("ocs.cache.bytes_avoided")
            .add(exec.cache_bytes_avoided);
        let (rg_stats, result_stats) = self.caches.stats();
        m.gauge("ocs.cache.rg_evictions")
            .record_max(rg_stats.evictions as i64);
        m.gauge("ocs.cache.result_evictions")
            .record_max(result_stats.evictions as i64);

        Ok(NodeResponse {
            batches,
            cpu_s,
            decompress_s,
            disk_bytes: exec.disk_bytes,
            exec,
            spans,
        })
    }

    /// Answer a request from the result cache: the cold run's batches,
    /// zero simulated cost, and a span marking the hit.
    fn replay_cached(&self, cached: &CachedResult, wall_start: std::time::Instant) -> NodeResponse {
        let exec = ExecutorStats {
            rows_emitted: cached.rows_emitted,
            result_cache_hits: 1,
            cache_bytes_avoided: cached.bytes_avoided,
            ..ExecutorStats::default()
        };
        let m = obs::metrics();
        m.counter("ocs.storage.requests").inc();
        m.counter("ocs.cache.result_hits").inc();
        m.counter("ocs.cache.bytes_avoided")
            .add(cached.bytes_avoided);
        obs::flight().record(
            obs::FlightKind::ResultCacheHit,
            1,
            cached.bytes_avoided,
            self.id as u64,
        );

        let tracer = obs::Tracer::new();
        let spans = if tracer.is_enabled() {
            let root = tracer.record(
                format!("storage[{}].execute", self.id),
                "storage",
                None,
                0.0,
                0.0,
            );
            tracer.set_wall(root, wall_start.elapsed().as_secs_f64());
            tracer.attr(root, "cache_hit", "result");
            tracer.attr(root, "cache_bytes_avoided", cached.bytes_avoided);
            tracer.attr(root, "rows", cached.rows_emitted);
            tracer.finish().to_recs()
        } else {
            Vec::new()
        };

        NodeResponse {
            batches: cached.batches.clone(),
            cpu_s: 0.0,
            decompress_s: 0.0,
            disk_bytes: 0,
            exec,
            spans,
        }
    }

    fn record_spans(
        &self,
        disk_s: f64,
        decompress_s: f64,
        scan_s: f64,
        ops_s: f64,
        exec: &ExecutorStats,
        wall_start: std::time::Instant,
    ) -> Vec<obs::SpanRec> {
        let tracer = obs::Tracer::new();
        if !tracer.is_enabled() {
            return Vec::new();
        }
        let total = disk_s + decompress_s + scan_s + ops_s;
        let root = tracer.record(
            format!("storage[{}].execute", self.id),
            "storage",
            None,
            0.0,
            total,
        );
        tracer.set_wall(root, wall_start.elapsed().as_secs_f64());
        tracer.attr(root, "rows", exec.rows_scanned);
        tracer.attr(root, "bytes", exec.disk_bytes);
        let tier = if exec.rg_cache_hits > 0 {
            "row_group"
        } else {
            "none"
        };
        tracer.attr(root, "cache_hit", tier);
        tracer.attr(root, "cache_bytes_avoided", exec.cache_bytes_avoided);
        let mut cursor = 0.0;
        for (name, seconds) in [
            ("storage.disk_read", disk_s),
            ("storage.decompress", decompress_s),
            ("storage.scan", scan_s),
            ("storage.ops", ops_s),
        ] {
            if seconds <= 0.0 {
                continue;
            }
            let id = tracer.record(name, "storage", Some(root), cursor, cursor + seconds);
            cursor += seconds;
            match name {
                "storage.scan" => {
                    tracer.attr(id, "rows", exec.rows_scanned);
                    tracer.attr(id, "row_groups", exec.scan_work.len() as u64);
                    tracer.attr(id, "row_groups_skipped", exec.row_groups_skipped);
                    tracer.attr(id, "cache_hit", tier);
                    tracer.attr(id, "rg_cache_hits", exec.rg_cache_hits);
                    tracer.attr(id, "cache_bytes_avoided", exec.cache_bytes_avoided);
                }
                "storage.ops" => {
                    tracer.attr(id, "rows", exec.rows_emitted);
                }
                "storage.disk_read" => {
                    tracer.attr(id, "bytes", exec.disk_bytes);
                }
                _ => {}
            }
        }
        tracer.finish().to_recs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::prelude::*;
    use substrait_ir::{Expr, Rel};

    fn setup(codec: CodecKind) -> (Arc<ObjectStore>, Schema) {
        let store = Arc::new(ObjectStore::new());
        store.create_bucket("lake").unwrap();
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64, false)]));
        let batch = RecordBatch::try_new(
            schema.clone(),
            vec![Arc::new(Array::from_i64((0..10_000).collect()))],
        )
        .unwrap();
        let bytes = parq::writer::write_file(
            schema.clone(),
            &[batch],
            parq::WriteOptions {
                codec,
                ..Default::default()
            },
        )
        .unwrap();
        store.put_object("lake", "t/0", bytes.into()).unwrap();
        ((store), (*schema).clone())
    }

    #[test]
    fn executes_and_bills_in_core_seconds() {
        let (store, schema) = setup(CodecKind::None);
        let node = StorageNode::new(
            0,
            store,
            NodeSpec {
                name: "storage",
                cores: 16,
                ghz: 2.0,
                eff_decode: 0.06,
                eff_vector: 0.12,
                eff_expr: 0.03,
            },
            DiskSpec { read_gbps: 2.0 },
            CostParams::default(),
        );
        let plan = Plan::new(Rel::read("t", schema, None));
        let resp = node.execute(&plan, "lake", "t/0").unwrap();
        assert_eq!(
            resp.batches.iter().map(|b| b.num_rows()).sum::<usize>(),
            10_000
        );
        assert!(resp.cpu_s > 0.0);
        assert_eq!(resp.decompress_s, 0.0, "no codec, no decompress cost");
        assert!(resp.disk_bytes > 0);
    }

    #[test]
    fn compressed_objects_cost_decompression_but_less_disk() {
        let (store_raw, schema) = setup(CodecKind::None);
        let (store_zst, _) = setup(CodecKind::Zst);
        let spec = NodeSpec {
            name: "storage",
            cores: 16,
            ghz: 2.0,
            eff_decode: 0.06,
            eff_vector: 0.12,
            eff_expr: 0.03,
        };
        let disk = DiskSpec { read_gbps: 2.0 };
        let raw = StorageNode::new(0, store_raw, spec.clone(), disk, CostParams::default());
        let zst = StorageNode::new(0, store_zst, spec, disk, CostParams::default());
        let plan = Plan::new(Rel::read("t", schema, None));
        let a = raw.execute(&plan, "lake", "t/0").unwrap();
        let b = zst.execute(&plan, "lake", "t/0").unwrap();
        assert!(
            b.disk_bytes < a.disk_bytes,
            "compression shrinks disk reads"
        );
        assert!(b.decompress_s > 0.0);
        assert_eq!(
            a.batches.iter().map(|x| x.num_rows()).sum::<usize>(),
            b.batches.iter().map(|x| x.num_rows()).sum::<usize>(),
        );
    }

    #[test]
    fn weaker_node_bills_more_seconds_for_same_work() {
        let (store, schema) = setup(CodecKind::None);
        let weak = StorageNode::new(
            0,
            store.clone(),
            NodeSpec {
                name: "weak",
                cores: 16,
                ghz: 2.0,
                eff_decode: 0.06,
                eff_vector: 0.12,
                eff_expr: 0.03,
            },
            DiskSpec { read_gbps: 2.0 },
            CostParams::default(),
        );
        let strong = StorageNode::new(
            1,
            store,
            NodeSpec {
                name: "strong",
                cores: 16,
                ghz: 4.0,
                eff_decode: 0.12,
                eff_vector: 0.24,
                eff_expr: 0.06,
            },
            DiskSpec { read_gbps: 2.0 },
            CostParams::default(),
        );
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", schema, None)),
            predicate: Expr::cmp(
                columnar::kernels::cmp::CmpOp::Gt,
                Expr::field(0),
                Expr::lit(Scalar::Int64(5000)),
            ),
        });
        let a = weak.execute(&plan, "lake", "t/0").unwrap();
        let b = strong.execute(&plan, "lake", "t/0").unwrap();
        assert!(a.cpu_s > b.cpu_s * 3.0, "{} vs {}", a.cpu_s, b.cpu_s);
        assert_eq!(a.exec.rows_emitted, b.exec.rows_emitted);
    }
}
