//! The OCS frontend node: the unified endpoint that accepts Substrait IR,
//! dispatches to the storage node owning the target object, and relays
//! Arrow-serialized results (paper §5.1: "The frontend exposes a unified
//! endpoint to applications, parses incoming queries, and dispatches them
//! to the appropriate storage node").

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use netsim::{CostParams, ExecStats, NodeSpec};
use sync::DebugMutex;

use crate::node::StorageNode;
use crate::stream::WireStream;
use crate::{planck, OcsError, OcsResult};

/// A buffered (whole-result) frontend response: Arrow-IPC bytes plus the
/// request's consolidated execution statistics.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// Arrow-IPC-encoded result batches.
    pub arrow_bytes: Bytes,
    /// Resource accounting for the whole request.
    pub stats: ExecStats,
}

/// Cache-affinity routing state: each key's sticky owner plus per-node
/// assignment counts for the overflow fallback.
#[derive(Debug, Default)]
struct RouterState {
    owner: HashMap<String, usize>,
    load: Vec<usize>,
}

/// The frontend node.
#[derive(Debug)]
pub struct OcsFrontend {
    nodes: Vec<Arc<StorageNode>>,
    spec: NodeSpec,
    cost: CostParams,
    router: DebugMutex<RouterState>,
}

impl OcsFrontend {
    /// Build a frontend over `nodes`.
    pub fn new(nodes: Vec<Arc<StorageNode>>, spec: NodeSpec, cost: CostParams) -> Self {
        assert!(!nodes.is_empty(), "OCS needs at least one storage node");
        let router = DebugMutex::named(
            "ocs.frontend.router",
            RouterState {
                owner: HashMap::new(),
                load: vec![0; nodes.len()],
            },
        );
        OcsFrontend {
            nodes,
            spec,
            cost,
            router,
        }
    }

    /// Which node owns `key` — cache-affinity routing.
    ///
    /// A key's first request hashes it to its *natural* owner and the
    /// assignment is remembered; every later scan of the same object goes
    /// to the node already holding its decoded row groups and cached
    /// results. When the natural owner is overloaded (its assignment
    /// count is at least twice the balanced share), the key falls back to
    /// the least-loaded node instead — and sticks *there*, so the entries
    /// it warms still have a single home.
    fn route(&self, key: &str) -> &Arc<StorageNode> {
        &self.nodes[self.route_index(key)]
    }

    fn route_index(&self, key: &str) -> usize {
        let n = self.nodes.len();
        let mut state = self.router.lock();
        if let Some(&idx) = state.owner.get(key) {
            return idx;
        }
        let hash = cache::fnv1a64(key.as_bytes());
        let natural = (hash % n as u64) as usize;
        let total: usize = state.load.iter().sum();
        let threshold = 2 * (total / n + 1);
        let idx = if state.load[natural] >= threshold {
            state
                .load
                .iter()
                .enumerate()
                .min_by_key(|&(_, l)| *l)
                .map(|(i, _)| i)
                .unwrap_or(natural)
        } else {
            natural
        };
        state.owner.insert(key.to_string(), idx);
        state.load[idx] += 1;
        // Flight-record the assignment (first routing of each key only;
        // the memoized path above is silent). The recorder takes no locks,
        // so recording under the router mutex cannot invert lock order.
        if idx == natural {
            obs::flight().record(
                obs::FlightKind::RouteNatural,
                idx as u64,
                state.load[idx] as u64,
                hash,
            );
        } else {
            obs::flight().record(
                obs::FlightKind::RouteSpill,
                natural as u64,
                idx as u64,
                hash,
            );
        }
        idx
    }

    /// Number of storage nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Decode and hard-verify an untrusted plan, then run it on the node
    /// owning `key`.
    ///
    /// The bytes come from an untrusted peer, so the decoded plan is
    /// always hard-verified — structure, typing, operator shape *and*
    /// resource caps ([`planck::Limits::untrusted`]) — before any
    /// storage node touches it. A rejection carries the structured
    /// [`planck::Diagnostic`] back across the error frame.
    fn verify_and_execute(
        &self,
        plan_bytes: &[u8],
        bucket: &str,
        key: &str,
    ) -> OcsResult<crate::node::NodeResponse> {
        // Parse the plan (real work, billed to the frontend).
        let plan = substrait_ir::decode(plan_bytes)
            .map_err(|e| OcsError::Plan(planck::Diagnostic::from_ir(&e, "root")))?;
        planck::verify_untrusted(&plan).map_err(|ds| OcsError::Plan(planck::primary(ds)))?;
        // The wire bytes ARE the canonical encoding, so hash them directly
        // for the result-cache fingerprint instead of re-encoding.
        self.route(key)
            .execute_encoded(&plan, bucket, key, cache::fnv1a64(plan_bytes))
    }

    /// Handle one request buffered: Substrait plan bytes in, one whole
    /// Arrow payload out. This is the pre-streaming boundary, kept as the
    /// A/B baseline the pipeline bench compares against.
    pub fn handle(&self, plan_bytes: &[u8], bucket: &str, key: &str) -> OcsResult<WireResponse> {
        let resp = self.verify_and_execute(plan_bytes, bucket, key)?;

        // Serialize results to the Arrow-IPC wire format (billed to the
        // frontend, which relays results in the paper's architecture).
        let arrow_bytes = columnar::ipc::encode_batches(&resp.batches);
        let frontend_work = self.cost.frontend_per_request
            + plan_bytes.len() as f64 * self.cost.frontend_per_byte
            + arrow_bytes.len() as f64 * (self.cost.frontend_per_byte + self.cost.byte_ser);
        let frontend_cpu_s = self.spec.core_seconds(frontend_work);

        Ok(WireResponse {
            arrow_bytes,
            stats: ExecStats {
                storage_cpu_s: resp.cpu_s,
                storage_decompress_s: resp.decompress_s,
                frontend_cpu_s,
                disk_bytes: resp.disk_bytes,
                rows_scanned: resp.exec.rows_scanned,
                rows_returned: resp.exec.rows_emitted,
                row_groups_skipped: resp.exec.row_groups_skipped,
                decoded_bytes_avoided: resp.exec.decoded_bytes_avoided,
                rg_cache_hits: resp.exec.rg_cache_hits,
                rg_cache_misses: resp.exec.rg_cache_misses,
                cache_bytes_avoided: resp.exec.cache_bytes_avoided,
                result_cache_hits: resp.exec.result_cache_hits,
                spans: resp.spans,
            },
        })
    }

    /// Handle one request streaming: the response is a lazy
    /// [`WireStream`] that encodes one frame per result batch as the
    /// consumer pulls, closing with a trailer frame carrying the
    /// request's [`ExecStats`].
    pub fn handle_stream(
        &self,
        plan_bytes: &[u8],
        bucket: &str,
        key: &str,
    ) -> OcsResult<WireStream> {
        let resp = self.verify_and_execute(plan_bytes, bucket, key)?;
        let schema = match resp.batches.first() {
            Some(b) => b.schema().clone(),
            None => Arc::new(columnar::Schema::empty()),
        };
        Ok(WireStream::new(
            schema,
            resp,
            plan_bytes.len(),
            self.spec.clone(),
            self.cost.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::prelude::*;
    use objstore::ObjectStore;
    use substrait_ir::{Expr, Plan, Rel};

    fn frontend(nodes: usize) -> (OcsFrontend, Schema) {
        let store = Arc::new(ObjectStore::new());
        store.create_bucket("lake").unwrap();
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64, false)]));
        for i in 0..4 {
            let batch = RecordBatch::try_new(
                schema.clone(),
                vec![Arc::new(Array::from_i64(
                    (i * 100..(i + 1) * 100).collect(),
                ))],
            )
            .unwrap();
            let bytes =
                parq::writer::write_file(schema.clone(), &[batch], Default::default()).unwrap();
            store
                .put_object("lake", &format!("t/{i}"), bytes.into())
                .unwrap();
        }
        let cost = CostParams::default();
        let spec = NodeSpec {
            name: "storage",
            cores: 16,
            ghz: 2.0,
            eff_decode: 0.06,
            eff_vector: 0.12,
            eff_expr: 0.03,
        };
        let storage: Vec<Arc<StorageNode>> = (0..nodes)
            .map(|id| {
                Arc::new(StorageNode::new(
                    id,
                    store.clone(),
                    spec.clone(),
                    netsim::DiskSpec { read_gbps: 2.0 },
                    cost.clone(),
                ))
            })
            .collect();
        (
            OcsFrontend::new(
                storage,
                NodeSpec {
                    name: "frontend",
                    cores: 48,
                    ghz: 3.9,
                    eff_decode: 0.05,
                    eff_vector: 0.05,
                    eff_expr: 0.05,
                },
                cost,
            ),
            (*schema).clone(),
        )
    }

    #[test]
    fn handles_wire_roundtrip() {
        let (fe, schema) = frontend(1);
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", schema, None)),
            predicate: Expr::cmp(
                columnar::kernels::cmp::CmpOp::GtEq,
                Expr::field(0),
                Expr::lit(Scalar::Int64(150)),
            ),
        });
        let bytes = substrait_ir::encode(&plan);
        let resp = fe.handle(&bytes, "lake", "t/1").unwrap();
        let batches = columnar::ipc::decode_batches(&resp.arrow_bytes).unwrap();
        let rows: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(rows, 50, "rows 150..199 of object t/1");
        assert_eq!(resp.stats.rows_returned, 50);
        assert!(resp.stats.frontend_cpu_s > 0.0);
        assert!(resp.stats.storage_cpu_s > 0.0);
    }

    #[test]
    fn stream_frames_match_buffered_payload() {
        let (fe, schema) = frontend(1);
        let plan = Plan::new(Rel::read("t", schema, None));
        let bytes = substrait_ir::encode(&plan);
        let buffered = fe.handle(&bytes, "lake", "t/2").unwrap();
        let expected = columnar::ipc::decode_batches(&buffered.arrow_bytes).unwrap();

        let mut stream = fe.handle_stream(&bytes, "lake", "t/2").unwrap();
        let mut dec = columnar::ipc::FrameDecoder::new();
        let mut got = Vec::new();
        let mut trailer_stats = None;
        let mut frontend_sum = 0.0;
        while let Some(frame) = stream.next_frame() {
            frontend_sum += frame.timing.frontend_s;
            dec.feed(&frame.bytes);
            while let Some(f) = dec.next_frame().unwrap() {
                match f {
                    columnar::ipc::Frame::Schema(_) => {}
                    columnar::ipc::Frame::Batch(b) => got.push(b),
                    columnar::ipc::Frame::Trailer(t) => {
                        trailer_stats = Some(netsim::ExecStats::decode(&t).unwrap());
                    }
                }
            }
        }
        dec.finish().unwrap();
        assert_eq!(got.len(), expected.len());
        for (a, b) in got.iter().zip(&expected) {
            assert_eq!(a.num_rows(), b.num_rows());
        }
        let stats = trailer_stats.expect("trailer frame carries stats");
        assert_eq!(stats.rows_returned, buffered.stats.rows_returned);
        assert_eq!(stats.disk_bytes, buffered.stats.disk_bytes);
        assert_eq!(stats.storage_cpu_s, buffered.stats.storage_cpu_s);
        // The trailer's frontend total is exactly the per-frame sum.
        assert!((stats.frontend_cpu_s - frontend_sum).abs() < 1e-12);
    }

    #[test]
    fn multi_node_sharding_matches_single_node() {
        // Satellite: keys spread over >=2 storage nodes must behave
        // exactly like a single-node deployment — identical batches and
        // identical (summed) stats per key.
        let (single, schema) = frontend(1);
        let (multi, _) = frontend(3);
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", schema, None)),
            predicate: Expr::cmp(
                columnar::kernels::cmp::CmpOp::GtEq,
                Expr::field(0),
                Expr::lit(Scalar::Int64(50)),
            ),
        });
        let bytes = substrait_ir::encode(&plan);

        // The 4 objects must actually land on >=2 distinct nodes.
        let mut nodes_hit = std::collections::HashSet::new();
        for i in 0..4 {
            nodes_hit.insert(multi.route(&format!("t/{i}")).id());
        }
        assert!(nodes_hit.len() >= 2, "keys all routed to one node");

        let mut single_total = netsim::ExecStats::default();
        let mut multi_total = netsim::ExecStats::default();
        for i in 0..4 {
            let key = format!("t/{i}");
            let a = single.handle(&bytes, "lake", &key).unwrap();
            let b = multi.handle(&bytes, "lake", &key).unwrap();
            assert_eq!(
                a.arrow_bytes, b.arrow_bytes,
                "object {key}: sharded result differs"
            );
            single_total.merge(&a.stats);
            multi_total.merge(&b.stats);
        }
        // Span names embed the executing node's id, which legitimately
        // differs under sharding; every counter must still match.
        single_total.spans.clear();
        multi_total.spans.clear();
        assert_eq!(single_total, multi_total, "summed stats must match");
        assert_eq!(single_total.rows_scanned, 400);
        // 100 rows per object; objects 0 contributes 50, rest 100 each.
        assert_eq!(single_total.rows_returned, 350);
    }

    #[test]
    fn rejects_garbage_plans() {
        let (fe, _) = frontend(1);
        let err = fe.handle(b"not a plan", "lake", "t/0").unwrap_err();
        let diag = err.diagnostic().expect("garbage is a plan error");
        assert_eq!(diag.code, substrait_ir::DiagCode::Corrupt);
    }

    #[test]
    fn decoded_plans_are_hard_verified_with_diagnostics() {
        let (fe, schema) = frontend(1);
        // Decodes fine, but references a field outside the scan arity —
        // the untrusted verify pass must reject it with code + path.
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", schema, None)),
            predicate: Expr::cmp(
                columnar::kernels::cmp::CmpOp::Eq,
                Expr::field(40),
                Expr::lit(Scalar::Int64(0)),
            ),
        });
        let bytes = substrait_ir::encode(&plan);
        let err = fe.handle(&bytes, "lake", "t/0").unwrap_err();
        let diag = err.diagnostic().expect("invalid plan is a plan error");
        assert_eq!(diag.code, substrait_ir::DiagCode::FieldOutOfRange);
        assert_eq!(diag.path, "root.predicate.left");
        // The rendered error names the offending node for engine logs.
        assert!(err.to_string().contains("P200"), "{err}");
        assert!(err.to_string().contains("root.predicate.left"), "{err}");
    }

    #[test]
    fn routing_is_stable_and_covers_nodes() {
        let (fe, _) = frontend(3);
        assert_eq!(fe.num_nodes(), 3);
        let a = fe.route("t/0").id();
        let b = fe.route("t/0").id();
        assert_eq!(a, b, "same key routes to the same node");
        // Different keys spread across nodes (statistically).
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            seen.insert(fe.route(&format!("key-{i}")).id());
        }
        assert!(seen.len() >= 2, "hash routing should hit multiple nodes");
    }

    #[test]
    fn overloaded_natural_owner_falls_back_to_least_loaded() {
        let (fe, _) = frontend(3);
        // Force every key's natural owner to one node by assigning keys
        // until the threshold trips, then check a fresh key whose natural
        // owner is saturated lands elsewhere — and sticks there.
        let natural_of = |key: &str| (cache::fnv1a64(key.as_bytes()) % 3) as usize;
        // Find many keys sharing natural owner 0.
        let clustered: Vec<String> = (0..10_000)
            .map(|i| format!("hot-{i}"))
            .filter(|k| natural_of(k) == 0)
            .take(16)
            .collect();
        assert!(clustered.len() >= 16);
        let mut first_spill = None;
        for k in &clustered {
            let id = fe.route(k).id();
            if id != 0 && first_spill.is_none() {
                first_spill = Some((k.clone(), id));
            }
        }
        let (spill_key, spill_node) =
            first_spill.expect("threshold must spill some clustered keys");
        // The spilled key is sticky on its fallback node.
        assert_eq!(fe.route(&spill_key).id(), spill_node);
        // Load stayed bounded: node 0 holds at most twice the fair share.
        let loads = {
            let state = fe.router.lock();
            state.load.clone()
        };
        let total: usize = loads.iter().sum();
        assert_eq!(total, clustered.len());
        assert!(
            loads[0] <= 2 * (total / 3 + 1),
            "natural owner overloaded: {loads:?}"
        );
    }

    #[test]
    fn missing_object_is_storage_error() {
        let (fe, schema) = frontend(1);
        let plan = Plan::new(Rel::read("t", schema, None));
        let bytes = substrait_ir::encode(&plan);
        assert!(matches!(
            fe.handle(&bytes, "lake", "ghost"),
            Err(OcsError::Storage(_))
        ));
    }
}
