//! The OCS frontend node: the unified endpoint that accepts Substrait IR,
//! dispatches to the storage node owning the target object, and relays
//! Arrow-serialized results (paper §5.1: "The frontend exposes a unified
//! endpoint to applications, parses incoming queries, and dispatches them
//! to the appropriate storage node").

use std::sync::Arc;

use bytes::Bytes;
use netsim::{CostParams, NodeSpec};

use crate::node::StorageNode;
use crate::{planck, OcsError, OcsResult};

/// A frontend response on the wire: Arrow-IPC bytes + resource accounting.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// Arrow-IPC-encoded result batches.
    pub arrow_bytes: Bytes,
    /// Core-seconds on the storage node.
    pub storage_cpu_s: f64,
    /// Core-seconds of decompression on the storage node.
    pub storage_decompress_s: f64,
    /// Compressed bytes the storage node read from disk.
    pub disk_bytes: u64,
    /// Core-seconds on the frontend node.
    pub frontend_cpu_s: f64,
    /// Rows scanned in storage (for monitoring).
    pub rows_scanned: u64,
    /// Rows returned (for monitoring).
    pub rows_returned: u64,
    /// Row groups the late-materialized scan skipped after masking.
    pub row_groups_skipped: u64,
    /// Encoded bytes the scan never had to decode.
    pub decoded_bytes_avoided: u64,
}

/// The frontend node.
#[derive(Debug)]
pub struct OcsFrontend {
    nodes: Vec<Arc<StorageNode>>,
    spec: NodeSpec,
    cost: CostParams,
}

impl OcsFrontend {
    /// Build a frontend over `nodes`.
    pub fn new(nodes: Vec<Arc<StorageNode>>, spec: NodeSpec, cost: CostParams) -> Self {
        assert!(!nodes.is_empty(), "OCS needs at least one storage node");
        OcsFrontend { nodes, spec, cost }
    }

    /// Which node owns `key` (stable hash sharding).
    fn route(&self, key: &str) -> &Arc<StorageNode> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        &self.nodes[(h % self.nodes.len() as u64) as usize]
    }

    /// Number of storage nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Handle one request: Substrait plan bytes in, Arrow bytes out.
    ///
    /// The bytes come from an untrusted peer, so the decoded plan is
    /// always hard-verified — structure, typing, operator shape *and*
    /// resource caps ([`planck::Limits::untrusted`]) — before any
    /// storage node touches it. A rejection carries the structured
    /// [`planck::Diagnostic`] back across the error frame.
    pub fn handle(&self, plan_bytes: &[u8], bucket: &str, key: &str) -> OcsResult<WireResponse> {
        // Parse the plan (real work, billed to the frontend).
        let plan = substrait_ir::decode(plan_bytes)
            .map_err(|e| OcsError::Plan(planck::Diagnostic::from_ir(&e, "root")))?;
        planck::verify_untrusted(&plan).map_err(|ds| OcsError::Plan(planck::primary(ds)))?;
        let node = self.route(key);
        let resp = node.execute(&plan, bucket, key)?;

        // Serialize results to the Arrow-IPC wire format (billed to the
        // frontend, which relays results in the paper's architecture).
        let arrow_bytes = columnar::ipc::encode_batches(&resp.batches);
        let frontend_work = self.cost.frontend_per_request
            + plan_bytes.len() as f64 * self.cost.frontend_per_byte
            + arrow_bytes.len() as f64 * (self.cost.frontend_per_byte + self.cost.byte_ser);
        let frontend_cpu_s = self.spec.core_seconds(frontend_work);

        Ok(WireResponse {
            arrow_bytes,
            storage_cpu_s: resp.cpu_s,
            storage_decompress_s: resp.decompress_s,
            disk_bytes: resp.disk_bytes,
            frontend_cpu_s,
            rows_scanned: resp.exec.rows_scanned,
            rows_returned: resp.exec.rows_emitted,
            row_groups_skipped: resp.exec.row_groups_skipped,
            decoded_bytes_avoided: resp.exec.decoded_bytes_avoided,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::prelude::*;
    use objstore::ObjectStore;
    use substrait_ir::{Expr, Plan, Rel};

    fn frontend(nodes: usize) -> (OcsFrontend, Schema) {
        let store = Arc::new(ObjectStore::new());
        store.create_bucket("lake").unwrap();
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64, false)]));
        for i in 0..4 {
            let batch = RecordBatch::try_new(
                schema.clone(),
                vec![Arc::new(Array::from_i64(
                    (i * 100..(i + 1) * 100).collect(),
                ))],
            )
            .unwrap();
            let bytes =
                parq::writer::write_file(schema.clone(), &[batch], Default::default()).unwrap();
            store
                .put_object("lake", &format!("t/{i}"), bytes.into())
                .unwrap();
        }
        let cost = CostParams::default();
        let spec = NodeSpec {
            name: "storage",
            cores: 16,
            ghz: 2.0,
            eff_decode: 0.06,
            eff_vector: 0.12,
            eff_expr: 0.03,
        };
        let storage: Vec<Arc<StorageNode>> = (0..nodes)
            .map(|id| {
                Arc::new(StorageNode::new(
                    id,
                    store.clone(),
                    spec.clone(),
                    cost.clone(),
                ))
            })
            .collect();
        (
            OcsFrontend::new(
                storage,
                NodeSpec {
                    name: "frontend",
                    cores: 48,
                    ghz: 3.9,
                    eff_decode: 0.05,
                    eff_vector: 0.05,
                    eff_expr: 0.05,
                },
                cost,
            ),
            (*schema).clone(),
        )
    }

    #[test]
    fn handles_wire_roundtrip() {
        let (fe, schema) = frontend(1);
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", schema, None)),
            predicate: Expr::cmp(
                columnar::kernels::cmp::CmpOp::GtEq,
                Expr::field(0),
                Expr::lit(Scalar::Int64(150)),
            ),
        });
        let bytes = substrait_ir::encode(&plan);
        let resp = fe.handle(&bytes, "lake", "t/1").unwrap();
        let batches = columnar::ipc::decode_batches(&resp.arrow_bytes).unwrap();
        let rows: usize = batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(rows, 50, "rows 150..199 of object t/1");
        assert_eq!(resp.rows_returned, 50);
        assert!(resp.frontend_cpu_s > 0.0);
        assert!(resp.storage_cpu_s > 0.0);
    }

    #[test]
    fn rejects_garbage_plans() {
        let (fe, _) = frontend(1);
        let err = fe.handle(b"not a plan", "lake", "t/0").unwrap_err();
        let diag = err.diagnostic().expect("garbage is a plan error");
        assert_eq!(diag.code, substrait_ir::DiagCode::Corrupt);
    }

    #[test]
    fn decoded_plans_are_hard_verified_with_diagnostics() {
        let (fe, schema) = frontend(1);
        // Decodes fine, but references a field outside the scan arity —
        // the untrusted verify pass must reject it with code + path.
        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", schema, None)),
            predicate: Expr::cmp(
                columnar::kernels::cmp::CmpOp::Eq,
                Expr::field(40),
                Expr::lit(Scalar::Int64(0)),
            ),
        });
        let bytes = substrait_ir::encode(&plan);
        let err = fe.handle(&bytes, "lake", "t/0").unwrap_err();
        let diag = err.diagnostic().expect("invalid plan is a plan error");
        assert_eq!(diag.code, substrait_ir::DiagCode::FieldOutOfRange);
        assert_eq!(diag.path, "root.predicate.left");
        // The rendered error names the offending node for engine logs.
        assert!(err.to_string().contains("P200"), "{err}");
        assert!(err.to_string().contains("root.predicate.left"), "{err}");
    }

    #[test]
    fn routing_is_stable_and_covers_nodes() {
        let (fe, _) = frontend(3);
        assert_eq!(fe.num_nodes(), 3);
        let a = fe.route("t/0").id();
        let b = fe.route("t/0").id();
        assert_eq!(a, b, "same key routes to the same node");
        // Different keys spread across nodes (statistically).
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            seen.insert(fe.route(&format!("key-{i}")).id());
        }
        assert!(seen.len() >= 2, "hash routing should hit multiple nodes");
    }

    #[test]
    fn missing_object_is_storage_error() {
        let (fe, schema) = frontend(1);
        let plan = Plan::new(Rel::read("t", schema, None));
        let bytes = substrait_ir::encode(&plan);
        assert!(matches!(
            fe.handle(&bytes, "lake", "ghost"),
            Err(OcsError::Storage(_))
        ));
    }
}
