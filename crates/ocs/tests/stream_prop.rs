//! Property tests for the streaming OCS boundary.
//!
//! 1. The framed batch stream is observationally identical to the
//!    buffered whole-result path, batch for batch, on randomized data,
//!    projections, predicates and plan shapes, for any frame window.
//! 2. Corrupted wire streams — truncations and bit flips anywhere in the
//!    frame bytes — surface as structured decode errors, never panics.

use std::sync::Arc;

use columnar::agg::AggFunc;
use columnar::ipc::{decode_frames, FrameDecoder};
use columnar::kernels::cmp::CmpOp;
use columnar::prelude::*;
use objstore::ObjectStore;
use ocs::{Ocs, OcsClient, OcsConfig};
use proptest::prelude::*;
use substrait_ir::{Expr, Measure, Plan, Rel};

fn base_schema() -> Schema {
    Schema::new(vec![
        Field::new("a", DataType::Int64, false),
        Field::new("b", DataType::Float64, false),
        Field::new("c", DataType::Int64, false),
    ])
}

/// Deterministic pseudo-random object, split into 32-row groups so scans
/// produce several batch frames.
fn deployment(seed: u64, rows: usize, window: usize) -> Ocs {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut a = Vec::with_capacity(rows);
    let mut b = Vec::with_capacity(rows);
    let mut c = Vec::with_capacity(rows);
    for _ in 0..rows {
        let v = next();
        a.push((v % 200) as i64);
        b.push((next() % 1000) as f64 / 10.0);
        c.push((next() % 5) as i64);
    }
    let schema = Arc::new(base_schema());
    let batch = RecordBatch::try_new(
        schema.clone(),
        vec![
            Arc::new(Array::from_i64(a)),
            Arc::new(Array::from_f64(b)),
            Arc::new(Array::from_i64(c)),
        ],
    )
    .unwrap();
    let bytes = parq::writer::write_file(
        schema,
        &[batch],
        parq::WriteOptions {
            row_group_rows: 32,
            ..Default::default()
        },
    )
    .unwrap();
    let store = Arc::new(ObjectStore::new());
    store.create_bucket("lake").unwrap();
    store.put_object("lake", "t/0", bytes.into()).unwrap();
    // Cache tiers off: this property re-executes the same plan through
    // two boundaries and compares cost ledgers, which warm caches would
    // legitimately change (cache_prop.rs covers cached-vs-cold equality).
    let mut config = OcsConfig::paper_testbed_uncached();
    config.frame_window = window;
    Ocs::new(store, config)
}

/// A randomized plan: projected read, then optionally filter /
/// filter+fetch / aggregate on top.
fn make_plan(shape: usize, proj_pick: usize, op: usize, lo: i64, span: i64) -> Plan {
    let projections: [Option<Vec<usize>>; 4] =
        [None, Some(vec![0, 1, 2]), Some(vec![2, 0]), Some(vec![1])];
    let projection = projections[proj_pick].clone();
    let out_len = projection.as_ref().map_or(3, |p| p.len());
    let pos = op % out_len;
    let file_col = projection.as_ref().map_or(pos, |p| p[pos]);
    let lit = |v: i64| {
        if file_col == 1 {
            Expr::lit(Scalar::Float64(v as f64))
        } else {
            Expr::lit(Scalar::Int64(v))
        }
    };
    let read = Rel::read("t", base_schema(), projection);
    let filtered = Rel::Filter {
        input: Box::new(read.clone()),
        predicate: match op % 3 {
            0 => Expr::cmp(CmpOp::Lt, Expr::field(pos), lit(lo)),
            1 => Expr::cmp(CmpOp::GtEq, Expr::field(pos), lit(lo)),
            _ => Expr::Between {
                expr: Box::new(Expr::field(pos)),
                lo: Box::new(lit(lo)),
                hi: Box::new(lit(lo + span)),
            },
        },
    };
    Plan::new(match shape {
        0 => read,
        1 => filtered,
        2 => Rel::Fetch {
            input: Box::new(filtered),
            offset: 0,
            limit: 7,
        },
        _ => Rel::Aggregate {
            input: Box::new(filtered),
            group_by: vec![],
            measures: vec![Measure {
                func: AggFunc::Count,
                arg: None,
                name: "n".into(),
            }],
        },
    })
}

fn rows_of(batches: &[RecordBatch]) -> Vec<Vec<Scalar>> {
    batches
        .iter()
        .flat_map(|b| (0..b.num_rows()).map(|r| b.row(r)).collect::<Vec<_>>())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn streaming_equals_buffered_on_random_plans(
        seed in any::<u64>(),
        rows in 40usize..300,
        shape in 0usize..4,
        proj_pick in 0usize..4,
        op in 0usize..6,
        lo in -50i64..250,
        span in 0i64..150,
        window in 1usize..6,
    ) {
        let ocs = deployment(seed, rows, window);
        let client: OcsClient = ocs.client();
        let plan = make_plan(shape, proj_pick, op, lo, span);

        let streamed = client.execute(&plan, "lake", "t/0").unwrap();
        let buffered = client.execute_buffered(&plan, "lake", "t/0").unwrap();

        // Batch-for-batch: same count, same schema, same rows per batch.
        prop_assert_eq!(streamed.batches.len(), buffered.batches.len());
        for (s, b) in streamed.batches.iter().zip(&buffered.batches) {
            prop_assert_eq!(s.schema(), b.schema());
            prop_assert_eq!(
                rows_of(std::slice::from_ref(s)),
                rows_of(std::slice::from_ref(b))
            );
        }
        // Identical consolidated storage-side accounting. The frontend
        // relay bill differs only by the framing overhead it relays.
        prop_assert_eq!(streamed.stats.storage_cpu_s, buffered.stats.storage_cpu_s);
        prop_assert_eq!(streamed.stats.storage_decompress_s, buffered.stats.storage_decompress_s);
        prop_assert_eq!(streamed.stats.disk_bytes, buffered.stats.disk_bytes);
        prop_assert_eq!(streamed.stats.rows_scanned, buffered.stats.rows_scanned);
        prop_assert_eq!(streamed.stats.rows_returned, buffered.stats.rows_returned);
        prop_assert_eq!(streamed.stats.row_groups_skipped, buffered.stats.row_groups_skipped);
        prop_assert_eq!(streamed.stats.decoded_bytes_avoided, buffered.stats.decoded_bytes_avoided);
        // Backpressure: the client never buffers more than the full framed
        // response, and never more frames than the window allows.
        prop_assert!(streamed.frames >= 2, "schema + trailer at minimum");
        prop_assert!(streamed.peak_buffered_bytes > 0);
        prop_assert!(streamed.peak_buffered_bytes <= streamed.response_bytes);
    }

    #[test]
    fn corrupted_streams_error_never_panic(
        seed in any::<u64>(),
        rows in 40usize..200,
        cut in 0usize..10_000,
        flip_pos in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let ocs = deployment(seed, rows, 4);
        let plan = make_plan(1, 0, 1, 50, 50);
        let mut stream = ocs
            .frontend()
            .handle_stream(&substrait_ir::encode(&plan), "lake", "t/0")
            .unwrap();
        let mut wire = Vec::new();
        let mut frame_count = 0usize;
        while let Some(f) = stream.next_frame() {
            wire.extend_from_slice(&f.bytes);
            frame_count += 1;
        }

        // Truncation at an arbitrary byte: either a clean prefix of whole
        // frames, or a structured incomplete-stream error.
        let cut = cut % wire.len();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..cut]);
        let mut decoded = 0usize;
        let result = loop {
            match dec.next_frame() {
                Ok(Some(_)) => decoded += 1,
                Ok(None) => break dec.finish(),
                Err(e) => break Err(e),
            }
        };
        // Either a structured error, or a clean finish that cannot have seen
        // every frame (truncation strictly before any byte removes frames).
        if result.is_ok() {
            prop_assert!(decoded < frame_count || cut == 0);
        }

        // A single bit flip anywhere must be caught by the per-frame CRC
        // (or an earlier header check) — a structured error, not a panic
        // and not silent acceptance.
        let mut flipped = wire.clone();
        let pos = flip_pos % flipped.len();
        flipped[pos] ^= 1 << flip_bit;
        prop_assert!(decode_frames(&bytes::Bytes::from(flipped)).is_err());
    }
}
