//! Property test for the near-storage caching subsystem: on randomized
//! plan/data sequences interleaved with writes, a cache-enabled
//! deployment is observationally identical to a cold one.
//!
//! Two deployments receive the same object writes and execute the same
//! plans; the cached side may serve row groups or whole pushdown results
//! from memory, but every query must return exactly the rows the cold
//! side returns — including immediately after an overwrite, which is
//! what catches stale-cache bugs.

use std::sync::Arc;

use columnar::agg::AggFunc;
use columnar::kernels::cmp::CmpOp;
use columnar::prelude::*;
use objstore::ObjectStore;
use ocs::{Ocs, OcsConfig};
use proptest::prelude::*;
use substrait_ir::{Expr, Measure, Plan, Rel};

fn base_schema() -> Schema {
    Schema::new(vec![
        Field::new("a", DataType::Int64, false),
        Field::new("b", DataType::Float64, false),
        Field::new("c", DataType::Int64, false),
    ])
}

/// Deterministic pseudo-random parq file bytes, multiple row groups.
fn object_bytes(seed: u64, rows: usize) -> Vec<u8> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut a = Vec::with_capacity(rows);
    let mut b = Vec::with_capacity(rows);
    let mut c = Vec::with_capacity(rows);
    for _ in 0..rows {
        let v = next();
        a.push((v % 200) as i64);
        b.push((next() % 1000) as f64 / 10.0);
        c.push((next() % 5) as i64);
    }
    let schema = Arc::new(base_schema());
    let batch = RecordBatch::try_new(
        schema.clone(),
        vec![
            Arc::new(Array::from_i64(a)),
            Arc::new(Array::from_f64(b)),
            Arc::new(Array::from_i64(c)),
        ],
    )
    .unwrap();
    parq::writer::write_file(
        schema,
        &[batch],
        parq::WriteOptions {
            row_group_rows: 32,
            ..Default::default()
        },
    )
    .unwrap()
}

fn deployment(config: OcsConfig) -> (Arc<ObjectStore>, Ocs) {
    let store = Arc::new(ObjectStore::new());
    store.create_bucket("lake").unwrap();
    let ocs = Ocs::new(store.clone(), config);
    (store, ocs)
}

/// A randomized plan over the shared schema (same family as
/// `stream_prop.rs`): projected read, optionally filtered, fetched, or
/// aggregated.
fn make_plan(shape: usize, proj_pick: usize, op: usize, lo: i64, span: i64) -> Plan {
    let projections: [Option<Vec<usize>>; 4] =
        [None, Some(vec![0, 1, 2]), Some(vec![2, 0]), Some(vec![1])];
    let projection = projections[proj_pick % 4].clone();
    let out_len = projection.as_ref().map_or(3, |p| p.len());
    let pos = op % out_len;
    let file_col = projection.as_ref().map_or(pos, |p| p[pos]);
    let lit = |v: i64| {
        if file_col == 1 {
            Expr::lit(Scalar::Float64(v as f64))
        } else {
            Expr::lit(Scalar::Int64(v))
        }
    };
    let read = Rel::read("t", base_schema(), projection);
    let filtered = Rel::Filter {
        input: Box::new(read.clone()),
        predicate: match op % 3 {
            0 => Expr::cmp(CmpOp::Lt, Expr::field(pos), lit(lo)),
            1 => Expr::cmp(CmpOp::GtEq, Expr::field(pos), lit(lo)),
            _ => Expr::Between {
                expr: Box::new(Expr::field(pos)),
                lo: Box::new(lit(lo)),
                hi: Box::new(lit(lo + span)),
            },
        },
    };
    Plan::new(match shape % 4 {
        0 => read,
        1 => filtered,
        2 => Rel::Fetch {
            input: Box::new(filtered),
            offset: 0,
            limit: 7,
        },
        _ => Rel::Aggregate {
            input: Box::new(filtered),
            group_by: vec![],
            measures: vec![Measure {
                func: AggFunc::Count,
                arg: None,
                name: "n".into(),
            }],
        },
    })
}

fn rows_of(batches: &[RecordBatch]) -> Vec<Vec<Scalar>> {
    batches
        .iter()
        .flat_map(|b| (0..b.num_rows()).map(|r| b.row(r)).collect::<Vec<_>>())
        .collect()
}

/// One step of the interleaved sequence, decoded from proptest tuples.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Overwrite one of the two objects with fresh data.
    Write { obj: usize, seed: u64, rows: usize },
    /// Execute a plan (drawn from a small pool so repeats — and
    /// therefore cache hits — actually happen) against one object.
    Query { obj: usize, pick: usize },
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_execution_equals_cold_execution(
        init_seed in any::<u64>(),
        plan_pool in proptest::collection::vec(
            (0usize..4, 0usize..4, 0usize..6, -50i64..250, 0i64..150),
            3..4,
        ),
        raw_ops in proptest::collection::vec(
            (0usize..5, 0usize..2, any::<u64>(), 40usize..120),
            1..24,
        ),
    ) {
        let plans: Vec<Plan> = plan_pool
            .iter()
            .map(|&(s, p, o, lo, span)| make_plan(s, p, o, lo, span))
            .collect();
        let ops: Vec<Op> = raw_ops
            .iter()
            .map(|&(kind, obj, seed, rows)| {
                if kind == 0 {
                    Op::Write { obj, seed, rows }
                } else {
                    Op::Query { obj, pick: (kind - 1) % plans.len() }
                }
            })
            .collect();

        // Same initial objects in both worlds.
        let (warm_store, warm) = deployment(OcsConfig::paper_testbed());
        let (cold_store, cold) = deployment(OcsConfig::paper_testbed_uncached());
        for obj in 0..2 {
            let bytes = object_bytes(init_seed ^ obj as u64, 64 + 32 * obj);
            warm_store
                .put_object("lake", &format!("t/{obj}"), bytes.clone().into())
                .unwrap();
            cold_store
                .put_object("lake", &format!("t/{obj}"), bytes.into())
                .unwrap();
        }

        let warm_client = warm.client();
        let cold_client = cold.client();
        for op in ops {
            match op {
                Op::Write { obj, seed, rows } => {
                    let bytes = object_bytes(seed, rows);
                    warm_store
                        .put_object("lake", &format!("t/{obj}"), bytes.clone().into())
                        .unwrap();
                    cold_store
                        .put_object("lake", &format!("t/{obj}"), bytes.into())
                        .unwrap();
                }
                Op::Query { obj, pick } => {
                    let plan = &plans[pick];
                    let key = format!("t/{obj}");
                    let w = warm_client.execute(plan, "lake", &key).unwrap();
                    let c = cold_client.execute(plan, "lake", &key).unwrap();
                    prop_assert_eq!(rows_of(&w.batches), rows_of(&c.batches));
                    prop_assert_eq!(w.stats.rows_returned, c.stats.rows_returned);
                    // The cold deployment must never report cache traffic.
                    prop_assert_eq!(c.stats.rg_cache_hits, 0);
                    prop_assert_eq!(c.stats.result_cache_hits, 0);
                    prop_assert_eq!(c.stats.cache_bytes_avoided, 0);
                }
            }
        }
    }

    #[test]
    fn warm_replay_is_exact_not_just_equivalent(
        seed in any::<u64>(),
        rows in 40usize..200,
        shape in 0usize..4,
        proj_pick in 0usize..4,
        op in 0usize..6,
        lo in -50i64..250,
        span in 0i64..150,
    ) {
        // The same plan twice against an unchanged object: the second
        // execution must reproduce the first byte-for-byte at the row
        // level while touching zero storage bytes.
        let (store, ocs) = deployment(OcsConfig::paper_testbed());
        store
            .put_object("lake", "t/0", object_bytes(seed, rows).into())
            .unwrap();
        let client = ocs.client();
        let plan = make_plan(shape, proj_pick, op, lo, span);
        let first = client.execute(&plan, "lake", "t/0").unwrap();
        let second = client.execute(&plan, "lake", "t/0").unwrap();
        prop_assert_eq!(rows_of(&first.batches), rows_of(&second.batches));
        prop_assert_eq!(second.stats.result_cache_hits, 1);
        prop_assert_eq!(second.stats.disk_bytes, 0);
        prop_assert_eq!(second.stats.storage_cpu_s, 0.0);
        // The replay saves at least what the cold run paid in disk reads
        // (zero only when zone maps pruned the entire scan).
        prop_assert!(second.stats.cache_bytes_avoided >= first.stats.disk_bytes);
    }
}
