//! Property test: the late-materialized scan pipeline is observationally
//! identical to the naive read-everything-then-filter reference on random
//! data, random projections, and random range predicates — while never
//! decoding more bytes than the eager executor path.

use std::sync::Arc;

use columnar::kernels::cmp::CmpOp;
use columnar::kernels::selection;
use columnar::prelude::*;
use netsim::CostParams;
use ocs::exec::{eval_expr, Executor};
use parq::ParqReader;
use proptest::prelude::*;
use substrait_ir::{Expr, Plan, Rel};

fn base_schema() -> Schema {
    Schema::new(vec![
        Field::new("a", DataType::Int64, false),
        Field::new("b", DataType::Float64, false),
        Field::new("c", DataType::Int64, false),
    ])
}

/// Deterministic pseudo-random table split into 32-row groups.
fn make_reader(seed: u64, rows: usize) -> ParqReader {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut a = Vec::with_capacity(rows);
    let mut b = Vec::with_capacity(rows);
    let mut c = Vec::with_capacity(rows);
    for _ in 0..rows {
        let v = next();
        a.push((v % 200) as i64);
        b.push((next() % 1000) as f64 / 10.0);
        c.push((next() % 5) as i64);
    }
    let schema = Arc::new(base_schema());
    let batch = RecordBatch::try_new(
        schema.clone(),
        vec![
            Arc::new(Array::from_i64(a)),
            Arc::new(Array::from_f64(b)),
            Arc::new(Array::from_i64(c)),
        ],
    )
    .unwrap();
    let bytes = parq::writer::write_file(
        schema,
        &[batch],
        parq::WriteOptions {
            row_group_rows: 32,
            ..Default::default()
        },
    )
    .unwrap();
    ParqReader::open(bytes.into()).unwrap()
}

/// A range predicate over output position `pos` whose literal type matches
/// the underlying file column.
fn make_predicate(pos: usize, file_col: usize, op: usize, lo: i64, span: i64) -> Expr {
    let lit = |v: i64| {
        if file_col == 1 {
            Expr::lit(Scalar::Float64(v as f64))
        } else {
            Expr::lit(Scalar::Int64(v))
        }
    };
    match op {
        0 => Expr::cmp(CmpOp::Lt, Expr::field(pos), lit(lo)),
        1 => Expr::cmp(CmpOp::GtEq, Expr::field(pos), lit(lo)),
        2 => Expr::cmp(CmpOp::Eq, Expr::field(pos), lit(lo)),
        _ => Expr::Between {
            expr: Box::new(Expr::field(pos)),
            lo: Box::new(lit(lo)),
            hi: Box::new(lit(lo + span)),
        },
    }
}

fn flat_rows(batches: &[RecordBatch]) -> Vec<Vec<Scalar>> {
    batches
        .iter()
        .flat_map(|b| (0..b.num_rows()).map(|r| b.row(r)).collect::<Vec<_>>())
        .collect()
}

/// The naive reference: decode every projected column of every row group
/// (no pruning, no late materialization), then filter each batch.
fn naive_scan(
    reader: &ParqReader,
    projection: Option<&[usize]>,
    predicate: &Expr,
) -> Vec<Vec<Scalar>> {
    let batches = reader.read_all(projection).unwrap();
    let mut out = Vec::new();
    for b in &batches {
        let mask = eval_expr(predicate, b).unwrap();
        let mask = mask.as_bool().unwrap();
        let f = selection::filter_batch(b, mask).unwrap();
        if f.num_rows() > 0 {
            out.push(f);
        }
    }
    flat_rows(&out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn late_mat_equals_naive_read_then_filter(
        seed in any::<u64>(),
        rows in 40usize..300,
        proj_pick in 0usize..4,
        filter_pick in 0usize..3,
        op in 0usize..4,
        lo in -50i64..250,
        span in 0i64..150,
    ) {
        let reader = make_reader(seed, rows);
        let projections: [Option<Vec<usize>>; 4] =
            [None, Some(vec![0, 1, 2]), Some(vec![2, 0]), Some(vec![1])];
        let projection = projections[proj_pick].clone();
        let out_len = projection.as_ref().map_or(3, |p| p.len());
        let pos = filter_pick % out_len;
        let file_col = projection.as_ref().map_or(pos, |p| p[pos]);
        let predicate = make_predicate(pos, file_col, op, lo, span);

        let plan = Plan::new(Rel::Filter {
            input: Box::new(Rel::read("t", base_schema(), projection.clone())),
            predicate: predicate.clone(),
        });
        let cost = CostParams::default();
        let (late, late_stats) = Executor::new(&reader, &cost)
            .run(&plan)
            .unwrap();
        let (eager, eager_stats) = Executor::new(&reader, &cost)
            .late_materialization(false)
            .run(&plan)
            .unwrap();

        let expected = naive_scan(&reader, projection.as_deref(), &predicate);
        prop_assert_eq!(&flat_rows(&late), &expected);
        prop_assert_eq!(&flat_rows(&eager), &expected);
        prop_assert_eq!(late_stats.rows_emitted, eager_stats.rows_emitted);
        prop_assert_eq!(late_stats.rows_scanned, eager_stats.rows_scanned);
        prop_assert!(
            late_stats.uncompressed_bytes <= eager_stats.uncompressed_bytes,
            "late path decoded more: {} vs {}",
            late_stats.uncompressed_bytes,
            eager_stats.uncompressed_bytes
        );
        prop_assert!(
            late_stats.disk_bytes <= eager_stats.disk_bytes,
            "late path read more: {} vs {}",
            late_stats.disk_bytes,
            eager_stats.disk_bytes
        );
    }
}
