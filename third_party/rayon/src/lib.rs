//! Workspace-local substitute for `rayon` providing the subset this
//! repository uses: `par_iter()` / `into_par_iter()` followed by
//! `.map(...).collect()`. Work is executed on `std::thread::scope`
//! threads with a shared atomic cursor; results preserve input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f` over `items` on up to `available_parallelism` threads,
/// returning results in input order. Panics in `f` propagate.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = cells[i]
                    .lock()
                    .expect("work cell lock")
                    .take()
                    .expect("each work item is claimed exactly once");
                let out = f(item);
                *slots[i].lock().expect("result slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every work item produced a result")
        })
        .collect()
}

/// An ordered collection of items awaiting a parallel `map`.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Lazily attach a per-item transform.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A pending parallel map; `collect` executes it.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F>
where
    T: Send,
{
    /// Execute the map across threads and gather results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        parallel_map(self.items, self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Element type produced.
    type Item: Send;
    /// Convert into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'data> {
    /// Element type referenced.
    type Item: 'data;
    /// Parallel iterator over `&Item`.
    fn par_iter(&'data self) -> ParIter<&'data Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter() {
        let v = vec![1i64, 2, 3, 4];
        let out: Vec<i64> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
