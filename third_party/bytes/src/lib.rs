//! Workspace-local substitute for the `bytes` crate, providing exactly the
//! API subset this repository uses. The container this workspace builds in
//! has no access to crates.io, so external dependencies are vendored as
//! minimal compatible implementations (see `third_party/README.md`).
//!
//! Provided: [`Bytes`] (cheaply clonable shared byte buffer), [`BytesMut`],
//! and the [`Buf`]/[`BufMut`] cursor traits with little-endian accessors.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Shared(Arc<Vec<u8>>),
    Static(&'static [u8]),
}

/// A cheaply clonable, immutable, shareable view of contiguous bytes.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_static(&[])
    }

    /// A buffer borrowing a `'static` slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            len: bytes.len(),
            repr: Repr::Static(bytes),
            offset: 0,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-view of `range` (indices relative to this view).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of range for {}",
            self.len
        );
        Bytes {
            repr: self.repr.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }

    fn as_slice(&self) -> &[u8] {
        let whole: &[u8] = match &self.repr {
            Repr::Shared(v) => v,
            Repr::Static(s) => s,
        };
        &whole[self.offset..self.offset + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            len: v.len(),
            repr: Repr::Shared(Arc::new(v)),
            offset: 0,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Append raw bytes (mirrors `Vec::extend_from_slice`).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Split off and return the first `n` bytes, leaving the remainder in
    /// `self`. Panics if `n > len`, matching the upstream contract.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(
            n <= self.inner.len(),
            "split_to({n}) out of range for {}",
            self.inner.len()
        );
        let rest = self.inner.split_off(n);
        BytesMut {
            inner: std::mem::replace(&mut self.inner, rest),
        }
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read cursor over a byte source. Accessors panic when fewer bytes remain
/// than requested, matching the upstream crate's contract.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    /// True when nothing remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "cannot advance past end of buffer");
        *self = &self[n..];
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn buf_roundtrip() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u32_le(0xdead_beef);
        out.put_i64_le(-42);
        out.put_f64_le(1.5);
        let mut buf = &out[..];
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u32_le(), 0xdead_beef);
        assert_eq!(buf.get_i64_le(), -42);
        assert_eq!(buf.get_f64_le(), 1.5);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn bytes_mut_freezes() {
        let mut m = BytesMut::with_capacity(8);
        m.put_slice(b"hello");
        assert_eq!(m.len(), 5);
        let b = m.freeze();
        assert_eq!(&b[..], b"hello");
    }
}
