//! Workspace-local substitute for `proptest`: a deterministic random-case
//! runner exposing the API subset this repository's property tests use —
//! the [`strategy::Strategy`] trait with `prop_map`, range / pattern /
//! tuple / `any` / `collection::vec` / `option::{of, weighted}` strategies,
//! `ProptestConfig::with_cases`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (failures report the generated
//! arguments instead), and string "regex" strategies support only the
//! `.{m,n}` / `[class]{m,n}` / literal forms used in this workspace.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Produce one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// Expand a character class body like `a-e` or `xyz0-9` into choices.
    fn expand_class(class: &str) -> Vec<char> {
        let chars: Vec<char> = class.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                assert!(lo <= hi, "invalid char class range {lo}-{hi}");
                out.extend(lo..=hi);
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty char class");
        out
    }

    /// Parse a `{m,n}` quantifier; `""` means exactly one.
    fn parse_quantifier(rest: &str) -> (usize, usize) {
        if rest.is_empty() {
            return (1, 1);
        }
        let body = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported pattern quantifier {rest:?}"));
        let (m, n) = body
            .split_once(',')
            .unwrap_or_else(|| panic!("unsupported quantifier body {body:?}"));
        let m: usize = m.trim().parse().expect("quantifier lower bound");
        let n: usize = n.trim().parse().expect("quantifier upper bound");
        assert!(m <= n, "quantifier {m} > {n}");
        (m, n)
    }

    impl Strategy for &str {
        type Value = String;

        /// Generate from the small pattern language this workspace uses:
        /// `.{m,n}` (printable ASCII), `[class]{m,n}`, or a literal string.
        fn generate(&self, rng: &mut TestRng) -> String {
            let (choices, rest): (Vec<char>, &str) = if let Some(stripped) = self.strip_prefix('[')
            {
                let end = stripped
                    .find(']')
                    .unwrap_or_else(|| panic!("unterminated char class in {self:?}"));
                (expand_class(&stripped[..end]), &stripped[end + 1..])
            } else if let Some(stripped) = self.strip_prefix('.') {
                ((' '..='~').collect(), stripped)
            } else {
                return (*self).to_string();
            };
            let (m, n) = parse_quantifier(rest);
            let len = rng.gen_range(m..=n);
            (0..len)
                .map(|_| choices[rng.gen_range(0..choices.len())])
                .collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical unconstrained generation strategy.
    pub trait Arbitrary {
        /// Produce an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rand::RngCore::next_u64(rng) & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spread over a wide magnitude range.
            let mag = rng.gen_range(-300i32..300) as f64;
            let mantissa = rng.gen_range(-1.0f64..1.0);
            mantissa * mag.exp2()
        }
    }

    /// Strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose elements come from `element` and whose length is
    /// drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty vec size range");
        VecStrategy { element, size }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>` with probability `p` of `Some`.
    pub struct OptionStrategy<S> {
        some_probability: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(self.some_probability) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` with probability `p`, `None` otherwise.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> OptionStrategy<S> {
        assert!((0.0..=1.0).contains(&p), "weight out of range");
        OptionStrategy {
            some_probability: p,
            inner,
        }
    }

    /// `Some`/`None` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.5, inner)
    }
}

pub mod test_runner {
    //! Case execution: configuration, RNG, and the runner loop.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; it is skipped.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic per-case random source.
    pub struct TestRng {
        inner: ChaCha8Rng,
    }

    impl TestRng {
        fn from_seed(seed: u64) -> TestRng {
            TestRng {
                inner: ChaCha8Rng::seed_from_u64(seed),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Run `case` until `config.cases` cases pass; panic on the first
    /// failure. Seeds derive from the test name so runs are reproducible.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let max_rejects = (config.cases as u64) * 16 + 256;
        let mut accepted = 0u32;
        let mut rejected = 0u64;
        let mut attempt = 0u64;
        while accepted < config.cases {
            let seed = base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            attempt += 1;
            let mut rng = TestRng::from_seed(seed);
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "property '{name}': too many rejected cases ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property '{name}' failed at case {accepted} (seed {seed:#x}):\n{msg}");
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Assert inside a `proptest!` body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "prop_assert_eq failed:\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Expand property-test functions: each `name in strategy` parameter is
/// generated per case and the body runs under [`test_runner::run_cases`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, __rng);)+
                // Render inputs up front: the body may consume them by value.
                let __inputs = format!(
                    concat!($("\n    ", stringify!($arg), " = {:?}"),+),
                    $(&$arg),+
                );
                let __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                match __case() {
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                            format!("{msg}\n  with inputs:{__inputs}"),
                        ))
                    }
                    other => other,
                }
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            xs in crate::collection::vec(-100i64..100, 0..50),
            opt in crate::option::weighted(0.9, 0u8..4),
            s in "[a-e]{0,3}",
            t in ".{0,12}",
            flag in any::<bool>(),
        ) {
            for x in &xs {
                prop_assert!((-100..100).contains(x));
            }
            if let Some(v) = opt {
                prop_assert!(v < 4);
            }
            prop_assert!(s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='e').contains(&c)));
            prop_assert!(t.len() <= 12);
            let _ = flag;
        }

        #[test]
        fn tuple_map_and_assume(
            row in ((0i64..10), (0.0f64..1.0), "[xy]{1,2}").prop_map(|(a, b, c)| (a * 2, b, c)),
            n in 0usize..10,
        ) {
            prop_assume!(n > 0);
            prop_assert!(row.0 % 2 == 0);
            prop_assert_eq!(row.2.is_empty(), false);
        }
    }

    #[test]
    #[should_panic(expected = "with inputs")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0i64..10) {
                prop_assert!(x > 100, "x too small");
            }
        }
        always_fails();
    }
}
