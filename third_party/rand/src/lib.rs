//! Workspace-local substitute for `rand` providing the subset this
//! repository uses: the [`RngCore`] / [`SeedableRng`] / [`Rng`] traits with
//! `gen_range` over integer and float ranges and `gen_bool`.
//!
//! Integer range sampling uses a simple modulo reduction; the bias is
//! negligible for the synthetic-workload spans used here and the streams
//! only need to be deterministic, not upstream-compatible.

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open or inclusive range.
/// A single generic [`SampleRange`] impl over this trait lets untyped
/// integer literals unify with the surrounding expression's type, matching
/// the upstream crate's inference behavior.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw from `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_between<G: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut G,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut G,
            ) -> $t {
                if inclusive {
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every bit pattern is valid.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                } else {
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_between<G: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut G) -> f64 {
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<G: RngCore> Rng for G {}

#[cfg(test)]
mod tests {
    use super::*;

    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = XorShift(0x1234_5678_9abc_def0);
        for _ in 0..1000 {
            let a = rng.gen_range(-50i32..=50);
            assert!((-50..=50).contains(&a));
            let b = rng.gen_range(1i64..=7);
            assert!((1..=7).contains(&b));
            let c = rng.gen_range(0usize..5);
            assert!(c < 5);
            let f = rng.gen_range(0.0f64..4.0);
            assert!((0.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = XorShift(42);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
