//! Workspace-local substitute for `parking_lot`, backed by `std::sync`
//! primitives. Matches the subset of the API this repository uses:
//! non-poisoning `lock()` / `read()` / `write()` that return guards
//! directly (poisoned std locks are recovered transparently).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
