//! Workspace-local substitute for `rand_chacha`: a real ChaCha8 block
//! cipher driving the [`rand::RngCore`] interface. Streams are
//! deterministic per seed but not bit-compatible with the upstream crate
//! (the workspace only requires reproducibility).

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// SplitMix64 step, used to expand a 64-bit seed into key material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic RNG backed by the ChaCha8 stream cipher.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in 0..4 {
            let wide = splitmix64(&mut sm);
            key[pair * 2] = wide as u32;
            key[pair * 2 + 1] = (wide >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn stream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let n = 10_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }
}
