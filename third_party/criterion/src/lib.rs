//! Workspace-local substitute for `criterion`: a small wall-clock harness
//! exposing the API subset this repository's benches use
//! (`benchmark_group`, `bench_function`, `BenchmarkId`, `Throughput`,
//! `sample_size`, `iter`, plus the `criterion_group!`/`criterion_main!`
//! macros). Reports mean time per iteration and derived throughput on
//! stdout; no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Throughput basis for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a display-formatted parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Anything `bench_function` accepts as an identifier.
pub trait IntoBenchmarkId {
    /// The rendered identifier string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

/// Runs the measured closure and records elapsed wall-clock time.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over the configured number of samples (after one
    /// untimed warmup call). The routine's return value is passed through
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
        self.iters = self.samples as u64;
    }
}

fn human_time(nanos_per_iter: f64) -> String {
    if nanos_per_iter < 1_000.0 {
        format!("{nanos_per_iter:.1} ns")
    } else if nanos_per_iter < 1_000_000.0 {
        format!("{:.2} us", nanos_per_iter / 1_000.0)
    } else if nanos_per_iter < 1_000_000_000.0 {
        format!("{:.2} ms", nanos_per_iter / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos_per_iter / 1_000_000_000.0)
    }
}

fn human_rate(per_second: f64, unit: &str) -> String {
    if per_second >= 1e9 {
        format!("{:.2} G{unit}/s", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.2} M{unit}/s", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.2} K{unit}/s", per_second / 1e3)
    } else {
        format!("{per_second:.1} {unit}/s")
    }
}

/// A named group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the per-iteration throughput basis for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut bencher = Bencher {
            samples: self.sample_size,
            total_nanos: 0,
            iters: 0,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters == 0 {
            0.0
        } else {
            bencher.total_nanos as f64 / bencher.iters as f64
        };
        let rate = self.throughput.map(|t| {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_second = if per_iter > 0.0 {
                count as f64 / (per_iter / 1e9)
            } else {
                0.0
            };
            human_rate(per_second, unit)
        });
        let full = format!("{}/{}", self.name, id);
        match rate {
            Some(rate) => println!(
                "{full:<56} time: {:>12}/iter   thrpt: {rate}   (n={})",
                human_time(per_iter),
                bencher.iters
            ),
            None => println!(
                "{full:<56} time: {:>12}/iter   (n={})",
                human_time(per_iter),
                bencher.iters
            ),
        }
        let _ = &self.criterion;
        self
    }

    /// End the group (separator line, mirroring the upstream API shape).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Default number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size,
            throughput: None,
        }
    }
}

/// Define a benchmark entry function from a config and target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0u64..100).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group! {
        name = smoke_benches;
        config = Criterion::default().sample_size(5);
        targets = spin
    }

    #[test]
    fn harness_runs() {
        smoke_benches();
    }
}
